"""Command-line interface: simulate, tune, and submit workloads.

Usage (installed as a module)::

    python -m repro workloads
    python -m repro instances --provider aws
    python -m repro simulate --workload pagerank --size DS2 \
        --instance h1.4xlarge --nodes 4 --set spark.executor.memory=8192
    python -m repro tune --workload bayes --tuner bo --budget 25 \
        --instance h1.4xlarge --nodes 4
    python -m repro submit --workload sort --input-mb 15000 \
        --provider aws --history history.json
"""

from __future__ import annotations

import argparse
import sys

from .cloud import Cluster, list_instances
from .config import SPARK_DEFAULTS, Configuration, spark_core_space
from .core import TuningService, load_history, save_history
from .sparksim import SparkSimulator
from .tuning import (
    BayesOptTuner,
    BestConfigTuner,
    GeneticTuner,
    HillClimbTuner,
    RandomSearchTuner,
    SimulationObjective,
    TreeTuner,
    run_tuner,
)
from .workloads import SUITE, get_workload

__all__ = ["main"]

_TUNERS = {
    "random": RandomSearchTuner,
    "bo": BayesOptTuner,
    "tree": TreeTuner,
    "genetic": GeneticTuner,
    "hillclimb": HillClimbTuner,
    "bestconfig": BestConfigTuner,
}


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, raw = pair.split("=", 1)
        if key not in SPARK_DEFAULTS:
            raise SystemExit(f"unknown Spark parameter {key!r}")
        default = SPARK_DEFAULTS[key]
        if isinstance(default, bool):
            value = raw.lower() in ("1", "true", "yes")
        elif isinstance(default, int):
            value = int(raw)
        elif isinstance(default, float):
            value = float(raw)
        else:
            value = raw
        overrides[key] = value
    return overrides


def _resolve_input(workload, size: str | None, input_mb: float | None) -> float:
    if input_mb is not None:
        return input_mb
    return workload.inputs.size(size or "DS1")


def _cmd_workloads(args) -> int:
    for name, cls in SUITE.items():
        w = cls()
        print(f"{name:<14} {w.category:<10} "
              f"DS1={w.inputs.ds1_mb / 1024:.0f}GB "
              f"DS2={w.inputs.ds2_mb / 1024:.0f}GB "
              f"DS3={w.inputs.ds3_mb / 1024:.0f}GB")
    return 0


def _cmd_instances(args) -> int:
    for t in list_instances(provider=args.provider):
        print(f"{t.name:<20} {t.provider:<6} {t.vcpus:>3} vCPU "
              f"{t.memory_mb / 1024:>6.1f} GiB  ${t.price_per_hour:.4f}/h")
    return 0


def _cmd_simulate(args) -> int:
    workload = get_workload(args.workload)
    input_mb = _resolve_input(workload, args.size, args.input_mb)
    cluster = Cluster.of(args.instance, args.nodes)
    config = Configuration({**SPARK_DEFAULTS, **_parse_overrides(args.set or [])})
    result = SparkSimulator().run(workload, input_mb, cluster, config,
                                  seed=args.seed)
    print(f"workload:  {workload.name} @ {input_mb / 1024:.1f} GB")
    print(f"cluster:   {cluster.describe()}")
    print(f"outcome:   {'SUCCESS' if result.success else 'FAILED'}"
          f"{'' if result.success else ' - ' + (result.failure_reason or '')}")
    print(f"runtime:   {result.runtime_s:.1f}s "
          f"(${cluster.cost_of(result.runtime_s):.4f})")
    print(f"stages:    {result.num_stages}, tasks: {result.num_tasks}, "
          f"executors: {result.executors_granted}/{result.executors_requested}")
    print(f"shuffle:   {result.total_shuffle_mb:.0f} MB, "
          f"spill: {result.total_spill_mb:.0f} MB, "
          f"GC: {result.total_gc_s:.0f}s")
    return 0 if result.success else 1


def _cmd_tune(args) -> int:
    workload = get_workload(args.workload)
    input_mb = _resolve_input(workload, args.size, args.input_mb)
    cluster = Cluster.of(args.instance, args.nodes)
    space = spark_core_space()
    tuner = _TUNERS[args.tuner](space, seed=args.seed)
    objective = SimulationObjective(workload, input_mb, cluster=cluster,
                                    seed=args.seed)
    result = run_tuner(tuner, objective, budget=args.budget)
    print(f"best runtime after {result.n_evaluations} executions: "
          f"{result.best_cost:.1f}s")
    for key in sorted(result.best_config):
        print(f"  {key} = {result.best_config[key]}")
    return 0


def _cmd_submit(args) -> int:
    service = TuningService(provider=args.provider, seed=args.seed)
    if args.history:
        try:
            service.store = load_history(args.history)
            print(f"loaded {len(service.store)} history records")
        except FileNotFoundError:
            pass
    workload = get_workload(args.workload)
    input_mb = _resolve_input(workload, args.size, args.input_mb)
    deployment = service.submit(args.tenant, workload, input_mb,
                                cloud_budget=args.cloud_budget,
                                disc_budget=args.disc_budget)
    print(f"cluster:          {deployment.cluster.describe()}")
    print(f"expected runtime: {deployment.expected_runtime_s:.1f}s")
    print(f"tuning execs:     {deployment.tuning_evaluations}")
    print(f"warm-started:     {', '.join(deployment.transferred_from) or 'no'}")
    if args.history:
        save_history(service.store, args.history)
        print(f"saved {len(service.store)} history records to {args.history}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Seamless configuration tuning of big data analytics",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload suite")

    p_inst = sub.add_parser("instances", help="list the instance catalogue")
    p_inst.add_argument("--provider", choices=["aws", "azure", "gcp"])

    def common(p):
        p.add_argument("--workload", required=True, choices=sorted(SUITE))
        p.add_argument("--size", choices=["DS1", "DS2", "DS3"])
        p.add_argument("--input-mb", type=float)
        p.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser("simulate", help="run one simulated execution")
    common(p_sim)
    p_sim.add_argument("--instance", default="h1.4xlarge")
    p_sim.add_argument("--nodes", type=int, default=4)
    p_sim.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="Spark parameter override (repeatable)")

    p_tune = sub.add_parser("tune", help="tune the Spark configuration")
    common(p_tune)
    p_tune.add_argument("--instance", default="h1.4xlarge")
    p_tune.add_argument("--nodes", type=int, default=4)
    p_tune.add_argument("--tuner", choices=sorted(_TUNERS), default="bo")
    p_tune.add_argument("--budget", type=int, default=25)

    p_submit = sub.add_parser("submit", help="seamless end-to-end tuning")
    common(p_submit)
    p_submit.add_argument("--provider", choices=["aws", "azure", "gcp"],
                          default="aws")
    p_submit.add_argument("--tenant", default="cli-user")
    p_submit.add_argument("--cloud-budget", type=int, default=10)
    p_submit.add_argument("--disc-budget", type=int, default=20)
    p_submit.add_argument("--history", help="JSON file to load/save history")
    return parser


_COMMANDS = {
    "workloads": _cmd_workloads,
    "instances": _cmd_instances,
    "simulate": _cmd_simulate,
    "tune": _cmd_tune,
    "submit": _cmd_submit,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
