"""Pluggable batch executors for the evaluation engine.

A batch executor turns a list of :class:`~repro.engine.engine.EvalRequest`
into the matching list of
:class:`~repro.sparksim.metrics.ExecutionResult`, in order.  Because
every request carries its own noise seed and the simulator derives all
randomness from it, the results are bit-identical whether a batch runs
serially in-process or fanned out across worker processes — parallelism
changes wall-clock, never observations.

Failure surface: :class:`ParallelExecutor` additionally exposes
``run_batch_partial`` (per-chunk futures, so a crashed worker loses only
its own chunk while completed chunks keep their results) and
``rebuild()`` (tear down a broken pool and start a fresh one) — the two
hooks :mod:`repro.engine.retry`-driven dispatch needs to survive
``BrokenProcessPool`` without aborting the batch.
"""

from __future__ import annotations

import os
import threading
from collections import Counter, OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, wait
from dataclasses import replace
from multiprocessing import resource_tracker, shared_memory

from ..config.space import Configuration
from ..sparksim.costmodel import Calibration
from ..sparksim.faults import FaultPlan
from ..sparksim.planstore import PlanStore
from ..sparksim.simulator import SparkSimulator
from .shm import (
    _segment_name,
    decode_configs,
    encode_configs,
    read_payload,
    unlink_segment,
    write_payload,
)

__all__ = [
    "SerialExecutor",
    "ParallelExecutor",
    "default_worker_count",
    "run_grouped",
]

#: workers beyond this stop paying for simulated executions (milliseconds
#: each) and start costing fork + pickle overhead on big hosts
DEFAULT_WORKER_CAP = 8


def default_worker_count(cap: int = DEFAULT_WORKER_CAP) -> int:
    """Sensible worker count: the machine's cores, capped at ``cap``.

    Tiny hosts still get at least one worker; big hosts are capped so a
    128-core box does not fork 128 simulator processes for
    millisecond-scale tasks.  Pass a larger ``cap`` to override.
    """
    if cap < 1:
        raise ValueError("cap must be >= 1")
    return max(1, min(os.cpu_count() or 1, cap))


def run_grouped(simulator: SparkSimulator, requests) -> list:
    """Answer ``requests`` in order, batching same-workload runs.

    Requests that share a workload object, input size and cluster form
    one :meth:`~repro.sparksim.simulator.SparkSimulator.run_batch` call
    (one plan-cache lookup + one vectorized cost sweep), which is
    bit-identical to running them one by one.  Grouping keys on the
    workload's *identity*: within one process (or one unpickled chunk,
    where pickle memoization preserves shared references) same-origin
    requests carry the same object.
    """
    requests = list(requests)
    groups: dict[tuple, list[int]] = {}
    for idx, r in enumerate(requests):
        key = (id(r.workload), float(r.input_mb), r.cluster)
        groups.setdefault(key, []).append(idx)
    results: list = [None] * len(requests)
    for idxs in groups.values():
        if len(idxs) == 1:
            i = idxs[0]
            r = requests[i]
            results[i] = simulator.run(
                r.workload, r.input_mb, r.cluster, r.config,
                env=r.env, seed=r.seed,
            )
        else:
            first = requests[idxs[0]]
            batch = simulator.run_batch(
                first.workload, first.input_mb, first.cluster,
                [requests[i].config for i in idxs],
                envs=[requests[i].env for i in idxs],
                seeds=[requests[i].seed for i in idxs],
            )
            for i, result in zip(idxs, batch):
                results[i] = result
    return results


class SerialExecutor:
    """Run every request in-process on one simulator (the baseline).

    With ``group_batches`` (the default), same-workload requests dispatch
    through the simulator's candidate-batched fast path; results stay
    bit-identical to the per-request loop.  Ignores ``worker_crash``
    faults by construction: those model pool workers dying, and there is
    no pool here — which is exactly why the engine degrades to this
    executor when pools keep breaking.
    """

    def __init__(self, simulator: SparkSimulator | None = None,
                 group_batches: bool = True):
        self.simulator = simulator or SparkSimulator()
        self.group_batches = group_batches

    def run_batch(self, requests) -> list:
        requests = list(requests)
        if self.group_batches and len(requests) > 1:
            return run_grouped(self.simulator, requests)
        return [
            self.simulator.run(
                r.workload, r.input_mb, r.cluster, r.config,
                env=r.env, seed=r.seed,
            )
            for r in requests
        ]

    def close(self) -> None:
        pass


# Per-worker simulator, built once by the pool initializer so workers do
# not re-construct (or worse, share) simulator state per task.
_WORKER_SIMULATOR: SparkSimulator | None = None

# Per-worker cache of attached request segments, so several chunks of
# one batch map the segment once.  Names are pid+counter unique and
# never reused, so a cached entry can never go stale — only unused.
_SEG_CACHE: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
_SEG_CACHE_CAP = 4


def _init_worker(calibration: Calibration | None, noise: bool,
                 fault_plan: FaultPlan | None = None,
                 plan_store_dir: str | None = None) -> None:
    global _WORKER_SIMULATOR
    plan_store = PlanStore(plan_store_dir) if plan_store_dir else None
    _WORKER_SIMULATOR = SparkSimulator(
        calibration=calibration, noise=noise, fault_plan=fault_plan,
        plan_store=plan_store,
    )


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    seg = _SEG_CACHE.get(name)
    if seg is not None:
        _SEG_CACHE.move_to_end(name)
        return seg
    seg = shared_memory.SharedMemory(name=name)   # attach, parent unlinks
    try:
        # On 3.11 *attaching* also registers with this worker's resource
        # tracker, which would warn (and race the parent's unlink) at
        # worker shutdown; the parent owns this segment's lifetime.
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass
    _SEG_CACHE[name] = seg  # staticcheck: ignore[RF003] -- deliberately worker-local: per-worker attachment cache; entries must never reach the parent
    while len(_SEG_CACHE) > _SEG_CACHE_CAP:
        _, old = _SEG_CACHE.popitem(last=False)
        old.close()
    return seg


def _run_one(request):
    plan = _WORKER_SIMULATOR.fault_plan
    if (
        plan is not None
        and getattr(request, "attempt", 0) == 0
        and plan.draw(request.seed).crash_worker
    ):
        # Injected infrastructure fault: die like a real OOM-killed or
        # segfaulted worker — no exception, no cleanup — so the parent
        # sees a genuine BrokenProcessPool.  First attempt only: the
        # retried request (attempt > 0) computes the true result, keeping
        # recovered histories bit-identical to fault-free runs.
        os._exit(13)
    return _WORKER_SIMULATOR.run(
        request.workload, request.input_mb, request.cluster, request.config,
        env=request.env, seed=request.seed,
    )


def _maybe_crash(requests) -> None:
    # Crash faults fire before any work, exactly as the per-request loop
    # would: the whole chunk is lost either way (os._exit kills the
    # worker), and retried requests (attempt > 0) never crash.
    plan = _WORKER_SIMULATOR.fault_plan
    if plan is not None:
        for r in requests:
            if getattr(r, "attempt", 0) == 0 and plan.draw(r.seed).crash_worker:
                os._exit(13)


def _run_chunk(requests):
    _maybe_crash(requests)
    return "raw", run_grouped(_WORKER_SIMULATOR, requests), os.getpid()


def _run_chunk_shm(seg_name: str, indices, light_requests,
                   result_name: str):
    """One chunk of a shared-memory batch.

    ``light_requests`` are the chunk's requests with ``config`` stripped
    (the heavy part); the configs come out of the batch segment by row
    index.  Results go back through a payload segment created under the
    *parent-assigned* ``result_name`` — so the parent can reap it even
    if this worker's result tuple never arrives (broken pool, timeout)
    — and the future's pickle is just ``(kind, name, size, pid)``.
    """
    _maybe_crash(light_requests)
    seg = _attach_segment(seg_name)
    configs = decode_configs(seg, indices)
    requests = [
        replace(r, config=c) for r, c in zip(light_requests, configs)
    ]
    results = run_grouped(_WORKER_SIMULATOR, requests)
    name, size = write_payload(results, name=result_name)
    return "shm", name, size, os.getpid()


class ParallelExecutor:
    """Fan requests out over a process pool of per-worker simulators.

    Workers are seeded per-request, so results are bit-identical to
    :class:`SerialExecutor` for the same batch.  Requests are chunked to
    amortize dispatch overhead — simulated executions are only
    milliseconds each, so per-task dispatch would dominate — and each
    chunk is its own future, so a worker crash forfeits one chunk's
    results, not the whole batch.

    With ``use_shm`` (the default), batches of at least
    ``shm_min_batch`` :class:`~repro.config.space.Configuration`
    candidates ship through one columnar shared-memory segment
    (:mod:`repro.engine.shm`) instead of per-chunk config pickles, and
    chunk results return through worker-created payload segments.
    Segment lifecycle is parent-owned: request segments are unlinked
    when their batch settles (success, timeout, or broken pool alike),
    and result segment *names are assigned by the parent at submit
    time*, so results a broken pool never delivered — or a straggler
    produced after its batch was abandoned — are reaped by name on the
    next dispatch, ``rebuild()`` or ``close()``; nothing survives the
    executor.

    ``plan_store_dir`` points workers at a shared on-disk
    :class:`~repro.sparksim.planstore.PlanStore`, so each compiled
    workload plan is built once across the whole pool.
    """

    def __init__(self, max_workers: int | None = None,
                 calibration: Calibration | None = None, noise: bool = True,
                 fault_plan: FaultPlan | None = None, use_shm: bool = True,
                 shm_min_batch: int = 8,
                 plan_store_dir: str | os.PathLike | None = None):
        self.max_workers = max_workers or default_worker_count()
        self._calibration = calibration
        self._noise = noise
        self._fault_plan = fault_plan
        self.use_shm = use_shm
        self.shm_min_batch = shm_min_batch
        self.plan_store_dir = (
            os.fspath(plan_store_dir) if plan_store_dir is not None else None
        )
        #: chunks answered per worker pid (utilisation audit surface)
        self.worker_chunks: Counter[int] = Counter()
        self._lock = threading.Lock()
        self._request_segments: set[str] = set()
        self._orphan_results: set[str] = set()
        self._pool = self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_worker,
            initargs=(self._calibration, self._noise, self._fault_plan,
                      self.plan_store_dir),
        )

    def rebuild(self) -> None:
        """Replace a (possibly broken) pool with a fresh one."""
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._reap_segments()
        self._pool = self._new_pool()

    # --- shared-memory bookkeeping ---------------------------------------
    def _note_result_segment(self, future: Future) -> None:
        """Done-callback: re-register straggler result segments.

        Result names are parent-assigned and registered at submit time,
        so most reaping needs no callback.  This covers the one gap: a
        straggler whose pre-registered name was already reaped (batch
        timed out, next dispatch unlinked a segment that did not exist
        yet) and who then *created* the segment — the callback re-adds
        the name so a later reap gets it.  Names the result loop
        consumes are discarded right after their unlink, so the orphan
        set only ever holds unconsumed (or just-unlinked) segments.
        """
        if future.cancelled() or future.exception() is not None:
            return
        payload = future.result()
        if isinstance(payload, tuple) and payload and payload[0] == "shm":
            with self._lock:
                self._orphan_results.add(payload[1])

    def _reap_segments(self) -> None:
        """Unlink every outstanding segment this executor knows about."""
        with self._lock:
            names = list(self._orphan_results) + list(self._request_segments)
            self._orphan_results.clear()
            self._request_segments.clear()
        for name in names:
            unlink_segment(name)

    def _unwrap(self, payload):
        """Chunk future payload -> results list (+ utilisation tally)."""
        if isinstance(payload, tuple) and payload:
            if payload[0] == "shm":
                _, name, size, pid = payload
                self.worker_chunks[pid] += 1
                results = read_payload(name, size)
                with self._lock:
                    self._orphan_results.discard(name)
                return results
            if payload[0] == "raw":
                _, results, pid = payload
                self.worker_chunks[pid] += 1
                return results
        return payload

    def _encode_batch(self, requests) -> shared_memory.SharedMemory | None:
        """The batch's config segment, or ``None`` for pickled dispatch."""
        if not self.use_shm or len(requests) < self.shm_min_batch:
            return None
        if not all(isinstance(r.config, Configuration) for r in requests):
            return None
        try:
            seg = encode_configs([r.config for r in requests])
        except ValueError:          # heterogeneous key sets
            return None
        with self._lock:
            self._request_segments.add(seg.name)
        return seg

    def utilization(self) -> dict:
        """Pool-size and per-worker chunk counts (pids elided)."""
        counts = sorted(self.worker_chunks.values(), reverse=True)
        return {
            "pool_size": self.max_workers,
            "workers_used": len(counts),
            "chunks_by_worker": counts,
        }

    def run_batch(self, requests) -> list:
        results, error = self.run_batch_partial(requests)
        if error is not None:
            raise error
        return results

    def run_batch_partial(
        self, requests, timeout_s: float | None = None,
    ) -> tuple[list, Exception | None]:
        """Run ``requests``; failed/unfinished slots come back as ``None``.

        Returns ``(results, first_error)`` where ``results`` aligns with
        ``requests``.  A broken pool fails only the chunks that had not
        completed; a ``timeout_s`` deadline fails whatever is still
        pending when it expires (reported as a ``TimeoutError``).
        """
        requests = list(requests)
        if not requests:
            return [], None
        self._reap_segments()       # straggler results from past batches
        chunksize = max(1, len(requests) // (self.max_workers * 4))
        chunks = [
            requests[i:i + chunksize]
            for i in range(0, len(requests), chunksize)
        ]
        seg = self._encode_batch(requests)
        try:
            futures: list[Future | None] = []
            error: Exception | None = None
            start = 0
            for chunk in chunks:
                indices = list(range(start, start + len(chunk)))
                start += len(chunk)
                try:
                    if seg is not None:
                        light = [replace(r, config=None) for r in chunk]
                        # Parent-assigned result name, registered BEFORE
                        # submit: if the pool breaks (or times out) with
                        # the chunk's result written but undelivered,
                        # the segment is still reapable by name.
                        result_name = _segment_name("r")
                        with self._lock:
                            self._orphan_results.add(result_name)
                        future = self._pool.submit(
                            _run_chunk_shm, seg.name, indices, light,
                            result_name,
                        )
                    else:
                        future = self._pool.submit(_run_chunk, chunk)
                    future.add_done_callback(self._note_result_segment)
                    futures.append(future)
                except Exception as exc:   # pool already broken / shut down
                    error = error or exc
                    futures.append(None)
            # A broken pool settles every future immediately, so waiting
            # for all of them never blocks on a crash — only on a real
            # deadline.
            live = [f for f in futures if f is not None]
            not_done: set[Future] = set()
            if live:
                _, not_done = wait(live, timeout=timeout_s)
            if not_done:
                error = error or TimeoutError(
                    f"{len(not_done)} chunk(s) unfinished after {timeout_s}s"
                )
            results: list = []
            for chunk, future in zip(chunks, futures):
                if future is None or future in not_done:
                    if future is not None:
                        future.cancel()
                    results.extend([None] * len(chunk))
                    continue
                try:
                    results.extend(self._unwrap(future.result(timeout=0)))
                except Exception as exc:
                    error = error or exc
                    results.extend([None] * len(chunk))
            return results, error
        finally:
            if seg is not None:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
                with self._lock:
                    self._request_segments.discard(seg.name)

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self._reap_segments()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
