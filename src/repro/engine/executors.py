"""Pluggable batch executors for the evaluation engine.

A batch executor turns a list of :class:`~repro.engine.engine.EvalRequest`
into the matching list of
:class:`~repro.sparksim.metrics.ExecutionResult`, in order.  Because
every request carries its own noise seed and the simulator derives all
randomness from it, the results are bit-identical whether a batch runs
serially in-process or fanned out across worker processes — parallelism
changes wall-clock, never observations.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from ..sparksim.costmodel import Calibration
from ..sparksim.simulator import SparkSimulator

__all__ = ["SerialExecutor", "ParallelExecutor", "default_worker_count"]


def default_worker_count() -> int:
    """Sensible worker count: the machine's cores, capped for tiny hosts."""
    return max(1, os.cpu_count() or 1)


class SerialExecutor:
    """Run every request in-process on one simulator (the baseline)."""

    def __init__(self, simulator: SparkSimulator | None = None):
        self.simulator = simulator or SparkSimulator()

    def run_batch(self, requests) -> list:
        return [
            self.simulator.run(
                r.workload, r.input_mb, r.cluster, r.config,
                env=r.env, seed=r.seed,
            )
            for r in requests
        ]

    def close(self) -> None:
        pass


# Per-worker simulator, built once by the pool initializer so workers do
# not re-construct (or worse, share) simulator state per task.
_WORKER_SIMULATOR: SparkSimulator | None = None


def _init_worker(calibration: Calibration | None, noise: bool) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = SparkSimulator(calibration=calibration, noise=noise)


def _run_one(request):
    return _WORKER_SIMULATOR.run(
        request.workload, request.input_mb, request.cluster, request.config,
        env=request.env, seed=request.seed,
    )


class ParallelExecutor:
    """Fan requests out over a process pool of per-worker simulators.

    Workers are seeded per-request, so results are bit-identical to
    :class:`SerialExecutor` for the same batch.  Requests are chunked to
    amortize pickling overhead — simulated executions are only
    milliseconds each, so per-task dispatch would dominate.
    """

    def __init__(self, max_workers: int | None = None,
                 calibration: Calibration | None = None, noise: bool = True):
        self.max_workers = max_workers or default_worker_count()
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_worker,
            initargs=(calibration, noise),
        )

    def run_batch(self, requests) -> list:
        requests = list(requests)
        if not requests:
            return []
        chunksize = max(1, len(requests) // (self.max_workers * 4))
        return list(self._pool.map(_run_one, requests, chunksize=chunksize))

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
