"""Pluggable batch executors for the evaluation engine.

A batch executor turns a list of :class:`~repro.engine.engine.EvalRequest`
into the matching list of
:class:`~repro.sparksim.metrics.ExecutionResult`, in order.  Because
every request carries its own noise seed and the simulator derives all
randomness from it, the results are bit-identical whether a batch runs
serially in-process or fanned out across worker processes — parallelism
changes wall-clock, never observations.

Failure surface: :class:`ParallelExecutor` additionally exposes
``run_batch_partial`` (per-chunk futures, so a crashed worker loses only
its own chunk while completed chunks keep their results) and
``rebuild()`` (tear down a broken pool and start a fresh one) — the two
hooks :mod:`repro.engine.retry`-driven dispatch needs to survive
``BrokenProcessPool`` without aborting the batch.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor, wait

from ..sparksim.costmodel import Calibration
from ..sparksim.faults import FaultPlan
from ..sparksim.simulator import SparkSimulator

__all__ = [
    "SerialExecutor",
    "ParallelExecutor",
    "default_worker_count",
    "run_grouped",
]

#: workers beyond this stop paying for simulated executions (milliseconds
#: each) and start costing fork + pickle overhead on big hosts
DEFAULT_WORKER_CAP = 8


def default_worker_count(cap: int = DEFAULT_WORKER_CAP) -> int:
    """Sensible worker count: the machine's cores, capped at ``cap``.

    Tiny hosts still get at least one worker; big hosts are capped so a
    128-core box does not fork 128 simulator processes for
    millisecond-scale tasks.  Pass a larger ``cap`` to override.
    """
    if cap < 1:
        raise ValueError("cap must be >= 1")
    return max(1, min(os.cpu_count() or 1, cap))


def run_grouped(simulator: SparkSimulator, requests) -> list:
    """Answer ``requests`` in order, batching same-workload runs.

    Requests that share a workload object, input size and cluster form
    one :meth:`~repro.sparksim.simulator.SparkSimulator.run_batch` call
    (one plan-cache lookup + one vectorized cost sweep), which is
    bit-identical to running them one by one.  Grouping keys on the
    workload's *identity*: within one process (or one unpickled chunk,
    where pickle memoization preserves shared references) same-origin
    requests carry the same object.
    """
    requests = list(requests)
    groups: dict[tuple, list[int]] = {}
    for idx, r in enumerate(requests):
        key = (id(r.workload), float(r.input_mb), r.cluster)
        groups.setdefault(key, []).append(idx)
    results: list = [None] * len(requests)
    for idxs in groups.values():
        if len(idxs) == 1:
            i = idxs[0]
            r = requests[i]
            results[i] = simulator.run(
                r.workload, r.input_mb, r.cluster, r.config,
                env=r.env, seed=r.seed,
            )
        else:
            first = requests[idxs[0]]
            batch = simulator.run_batch(
                first.workload, first.input_mb, first.cluster,
                [requests[i].config for i in idxs],
                envs=[requests[i].env for i in idxs],
                seeds=[requests[i].seed for i in idxs],
            )
            for i, result in zip(idxs, batch):
                results[i] = result
    return results


class SerialExecutor:
    """Run every request in-process on one simulator (the baseline).

    With ``group_batches`` (the default), same-workload requests dispatch
    through the simulator's candidate-batched fast path; results stay
    bit-identical to the per-request loop.  Ignores ``worker_crash``
    faults by construction: those model pool workers dying, and there is
    no pool here — which is exactly why the engine degrades to this
    executor when pools keep breaking.
    """

    def __init__(self, simulator: SparkSimulator | None = None,
                 group_batches: bool = True):
        self.simulator = simulator or SparkSimulator()
        self.group_batches = group_batches

    def run_batch(self, requests) -> list:
        requests = list(requests)
        if self.group_batches and len(requests) > 1:
            return run_grouped(self.simulator, requests)
        return [
            self.simulator.run(
                r.workload, r.input_mb, r.cluster, r.config,
                env=r.env, seed=r.seed,
            )
            for r in requests
        ]

    def close(self) -> None:
        pass


# Per-worker simulator, built once by the pool initializer so workers do
# not re-construct (or worse, share) simulator state per task.
_WORKER_SIMULATOR: SparkSimulator | None = None


def _init_worker(calibration: Calibration | None, noise: bool,
                 fault_plan: FaultPlan | None = None) -> None:
    global _WORKER_SIMULATOR
    _WORKER_SIMULATOR = SparkSimulator(
        calibration=calibration, noise=noise, fault_plan=fault_plan,
    )


def _run_one(request):
    plan = _WORKER_SIMULATOR.fault_plan
    if (
        plan is not None
        and getattr(request, "attempt", 0) == 0
        and plan.draw(request.seed).crash_worker
    ):
        # Injected infrastructure fault: die like a real OOM-killed or
        # segfaulted worker — no exception, no cleanup — so the parent
        # sees a genuine BrokenProcessPool.  First attempt only: the
        # retried request (attempt > 0) computes the true result, keeping
        # recovered histories bit-identical to fault-free runs.
        os._exit(13)
    return _WORKER_SIMULATOR.run(
        request.workload, request.input_mb, request.cluster, request.config,
        env=request.env, seed=request.seed,
    )


def _run_chunk(requests):
    # Crash faults fire before any work, exactly as the per-request loop
    # would: the whole chunk is lost either way (os._exit kills the
    # worker), and retried requests (attempt > 0) never crash.
    plan = _WORKER_SIMULATOR.fault_plan
    if plan is not None:
        for r in requests:
            if getattr(r, "attempt", 0) == 0 and plan.draw(r.seed).crash_worker:
                os._exit(13)
    return run_grouped(_WORKER_SIMULATOR, requests)


class ParallelExecutor:
    """Fan requests out over a process pool of per-worker simulators.

    Workers are seeded per-request, so results are bit-identical to
    :class:`SerialExecutor` for the same batch.  Requests are chunked to
    amortize pickling overhead — simulated executions are only
    milliseconds each, so per-task dispatch would dominate — and each
    chunk is its own future, so a worker crash forfeits one chunk's
    results, not the whole batch.
    """

    def __init__(self, max_workers: int | None = None,
                 calibration: Calibration | None = None, noise: bool = True,
                 fault_plan: FaultPlan | None = None):
        self.max_workers = max_workers or default_worker_count()
        self._calibration = calibration
        self._noise = noise
        self._fault_plan = fault_plan
        self._pool = self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_init_worker,
            initargs=(self._calibration, self._noise, self._fault_plan),
        )

    def rebuild(self) -> None:
        """Replace a (possibly broken) pool with a fresh one."""
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._new_pool()

    def run_batch(self, requests) -> list:
        results, error = self.run_batch_partial(requests)
        if error is not None:
            raise error
        return results

    def run_batch_partial(
        self, requests, timeout_s: float | None = None,
    ) -> tuple[list, Exception | None]:
        """Run ``requests``; failed/unfinished slots come back as ``None``.

        Returns ``(results, first_error)`` where ``results`` aligns with
        ``requests``.  A broken pool fails only the chunks that had not
        completed; a ``timeout_s`` deadline fails whatever is still
        pending when it expires (reported as a ``TimeoutError``).
        """
        requests = list(requests)
        if not requests:
            return [], None
        chunksize = max(1, len(requests) // (self.max_workers * 4))
        chunks = [
            requests[i:i + chunksize]
            for i in range(0, len(requests), chunksize)
        ]
        futures: list[Future | None] = []
        error: Exception | None = None
        for chunk in chunks:
            try:
                futures.append(self._pool.submit(_run_chunk, chunk))
            except Exception as exc:   # pool already broken / shut down
                error = error or exc
                futures.append(None)
        # A broken pool settles every future immediately, so waiting for
        # all of them never blocks on a crash — only on a real deadline.
        live = [f for f in futures if f is not None]
        not_done: set[Future] = set()
        if live:
            _, not_done = wait(live, timeout=timeout_s)
        if not_done:
            error = error or TimeoutError(
                f"{len(not_done)} chunk(s) unfinished after {timeout_s}s"
            )
        results: list = []
        for chunk, future in zip(chunks, futures):
            if future is None or future in not_done:
                if future is not None:
                    future.cancel()
                results.extend([None] * len(chunk))
                continue
            try:
                results.extend(future.result(timeout=0))
            except Exception as exc:
                error = error or exc
                results.extend([None] * len(chunk))
        return results, error

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
