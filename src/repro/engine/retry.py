"""Retry, backoff, and graceful-degradation policy for batch evaluation.

A provider-side engine that fans batches over worker processes inherits
every infrastructure failure mode a real cluster has: a worker dies and
poisons the pool (``BrokenProcessPool``), a batch hangs, a host loses
its process budget.  The paper's premise — "any failed test execution is
expensive and has a long fix-execute-debug cycle" — cuts both ways: the
*evaluation harness* must not turn one crashed worker into an aborted
tuning session.

:class:`RetryPolicy` is the knob set, consumed by
:meth:`repro.engine.engine.EvaluationEngine.evaluate_batch`:

* bounded attempts with exponential backoff and *deterministic* jitter
  (a stable hash of the attempt index and a caller token — reproducible
  runs stay reproducible, while concurrent engines still de-synchronize);
* a per-dispatch timeout so a wedged pool surfaces as a retryable
  failure instead of a hang;
* pool rebuilds on ``BrokenProcessPool``, re-dispatching only the
  requests that never finished (results are pure functions of the
  request, so retries cannot change observations);
* after ``degrade_after`` pool-level failures, a one-way downgrade to
  the in-process serial executor — slower, but the batch completes and
  the downgrade is recorded in :class:`FailureCounters`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy", "FailureCounters", "RetryError"]


class RetryError(RuntimeError):
    """Raised when requests still fail after every attempt and fallback."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs for one engine's dispatch path.

    Parameters
    ----------
    max_attempts:
        Total tries per request (first dispatch included).
    backoff_base_s / backoff_factor:
        Attempt ``a`` sleeps ``base * factor**a`` before re-dispatch.
    jitter_fraction:
        Backoff is stretched by up to this fraction, derived
        deterministically from ``(attempt, token)`` — no wall-clock or
        global RNG, so retried runs remain reproducible.
    batch_timeout_s:
        Per-dispatch deadline for executors that support partial results;
        requests unfinished at the deadline count as failed and retry.
        ``None`` disables the deadline.
    degrade_after:
        Pool-level failures (broken pool / timeout) tolerated before the
        engine downgrades to the serial executor for good.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.02
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.25
    batch_timeout_s: float | None = None
    degrade_after: int = 2

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.batch_timeout_s is not None and self.batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive (or None)")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")

    def backoff_s(self, attempt: int, token: int = 0) -> float:
        """Sleep before re-dispatching attempt ``attempt + 1``.

        Deterministic: the jitter is a stable digest of ``(attempt,
        token)``, not a draw from any RNG the simulation shares.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        base = self.backoff_base_s * self.backoff_factor**attempt
        if self.jitter_fraction == 0.0 or base == 0.0:
            return base
        digest = hashlib.blake2b(
            f"{attempt}:{token}".encode(), digest_size=8
        ).digest()
        unit = int.from_bytes(digest, "big") / 2**64      # in [0, 1)
        return base * (1.0 + self.jitter_fraction * unit)


@dataclass
class FailureCounters:
    """Failure/retry/degradation tallies for one engine (audit surface)."""

    #: request-attempts that produced no result (crash, broken pool, timeout)
    n_failures: int = 0
    #: requests re-dispatched after a failed attempt
    n_retries: int = 0
    #: process pools torn down and rebuilt after a pool-level failure
    n_pool_rebuilds: int = 0
    #: one-way downgrades from the parallel to the serial executor
    n_degraded: int = 0
    #: dispatches that hit the per-batch deadline
    n_timeouts: int = 0
    #: requests only answered by the last-resort serial pass
    n_exhausted: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "n_failures": self.n_failures,
            "n_retries": self.n_retries,
            "n_pool_rebuilds": self.n_pool_rebuilds,
            "n_degraded": self.n_degraded,
            "n_timeouts": self.n_timeouts,
            "n_exhausted": self.n_exhausted,
        }
