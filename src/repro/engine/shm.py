"""Zero-copy candidate shipping over ``multiprocessing.shared_memory``.

The process-pool executor's per-chunk pickles are dominated by the
candidate :class:`~repro.config.space.Configuration` dicts — a few
dozen key/value pairs serialized per request, per chunk.  This module
replaces them with one columnar shared-memory segment per batch:

* :func:`encode_configs` lays a ``Configuration`` batch out as
  struct-of-arrays columns — one typed array (int64 / float64 / bool)
  or string-code table per parameter — plus a small pickled header with
  the column directory, all inside a single
  :class:`~multiprocessing.shared_memory.SharedMemory` segment;
* :func:`decode_configs` reconstructs exact ``Configuration`` objects
  for any index subset, reading columns as zero-copy numpy views of the
  segment (only the requested rows are materialized);
* :func:`write_payload` / :func:`read_payload` move chunk results back
  through worker-created segments, so the future result crossing the
  pipe is just a ``(name, size)`` pair.

Exactness contract: ``decode_configs(encode_configs(cfgs)) == cfgs``
field-for-field, including value *types* (bools stay ``bool``, ints
``int``, categoricals ``str``).  Columns that cannot be expressed as a
typed array (mixed types, out-of-range ints, non-scalar values) fall
back to a pickled column inside the same segment — layout degrades,
correctness never does.

Segment lifecycle: names carry the :data:`PREFIX` plus the creating
pid and a monotonic counter, so they are unique per process and
greppable in ``/dev/shm``.  Creators unlink; attachers only close.
Worker-created result segments are unregistered from the worker's
``resource_tracker`` so the *parent* (which alone knows when the bytes
were consumed) owns the unlink — see
:class:`repro.engine.executors.ParallelExecutor` for the bookkeeping
that guarantees no segment outlives its batch, even on retry/rebuild
paths.
"""

from __future__ import annotations

import itertools
import os
import pickle
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..config.space import Configuration

__all__ = [
    "PREFIX",
    "encode_configs",
    "decode_configs",
    "write_payload",
    "read_payload",
    "unlink_segment",
]

#: every segment this package creates starts with this (leak checks grep
#: ``/dev/shm`` for it)
PREFIX = "reprosim-"

_COUNTER = itertools.count()

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _segment_name(tag: str) -> str:
    return f"{PREFIX}{os.getpid()}-{tag}{next(_COUNTER)}"


def _new_segment(size: int, tag: str) -> shared_memory.SharedMemory:
    # pid + monotonic counter makes collisions impossible within a
    # process tree; retry anyway in case of a stale same-name leftover.
    while True:
        try:
            return shared_memory.SharedMemory(
                create=True, size=max(1, size), name=_segment_name(tag),
            )
        except FileExistsError:
            continue


def _column(values: list) -> tuple[str, object]:
    """Classify one parameter column: ``(kind, payload)``.

    Kinds: ``"bool"``/``"int"``/``"float"`` (numpy array payload),
    ``"str"`` (``(codes, table)``), ``"pickle"`` (raw value list).
    ``bool`` is checked before ``int`` — it is a subclass.
    """
    first = values[0]
    if isinstance(first, bool):
        if all(isinstance(v, bool) for v in values):
            return "bool", np.array(values, dtype=np.uint8)
    elif isinstance(first, int):
        if all(
            type(v) is int and _INT64_MIN <= v <= _INT64_MAX for v in values
        ):
            return "int", np.array(values, dtype=np.int64)
    elif isinstance(first, float):
        if all(type(v) is float for v in values):
            return "float", np.array(values, dtype=np.float64)
    elif isinstance(first, str):
        if all(type(v) is str for v in values):
            table: dict[str, int] = {}
            codes = np.empty(len(values), dtype=np.int32)
            for i, v in enumerate(values):
                codes[i] = table.setdefault(v, len(table))
            return "str", (codes, list(table))
    return "pickle", values


def encode_configs(configs) -> shared_memory.SharedMemory:
    """Lay ``configs`` out columnar in a fresh shared-memory segment.

    The caller owns the segment: ``close()`` + ``unlink()`` when every
    consumer is done (:func:`unlink_segment`).  Requires a non-empty
    batch with a uniform key set (engine batches always are — each
    request carries a fully-resolved config); heterogeneous batches
    raise ``ValueError`` and the caller falls back to pickled dispatch.
    """
    configs = list(configs)
    if not configs:
        raise ValueError("cannot encode an empty batch")
    keys = list(configs[0].keys())
    key_set = set(keys)
    if any(set(c.keys()) != key_set for c in configs[1:]):
        raise ValueError("configs do not share one key set")

    columns = []                 # (key, kind, meta, array-or-None)
    arrays: list[np.ndarray] = []
    for key in keys:
        kind, payload = _column([c[key] for c in configs])
        if kind == "str":
            codes, table = payload
            columns.append((key, kind, table, codes))
            arrays.append(codes)
        elif kind == "pickle":
            columns.append((key, kind, payload, None))
        else:
            columns.append((key, kind, None, payload))
            arrays.append(payload)

    # Header: n rows + per-column (key, kind, meta, dtype, offset, nbytes).
    # Offsets are *relative to the data base* — the first 8-byte boundary
    # after the header — so the directory's own pickled size (which the
    # offsets must not depend on) stays out of the arithmetic.  Layout:
    # [8B header_len][header][pad][column arrays, 8-byte aligned].
    directory = []
    rel = 0
    i_arr = 0
    for key, kind, meta, arr in columns:
        if arr is None:
            directory.append((key, kind, meta, None, 0, 0))
        else:
            directory.append((key, kind, meta, arr.dtype.str, rel, arr.nbytes))
            rel = (rel + arr.nbytes + 7) & ~7
            i_arr += 1
    header = pickle.dumps((len(configs), directory), protocol=5)
    data_base = (8 + len(header) + 7) & ~7

    shm = _new_segment(data_base + rel, "q")
    try:
        buf = shm.buf
        buf[0:8] = len(header).to_bytes(8, "little")
        buf[8:8 + len(header)] = header
        i_arr = 0
        for key, kind, meta, dtype, off, nbytes in directory:
            if dtype is None:
                continue
            arr = arrays[i_arr]
            i_arr += 1
            np.frombuffer(buf, dtype=arr.dtype, count=arr.size,
                          offset=data_base + off)[:] = arr
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return shm


def decode_configs(shm: shared_memory.SharedMemory,
                   indices=None) -> list[Configuration]:
    """Rebuild ``Configuration`` rows from an encoded segment.

    ``indices`` selects a row subset (a chunk); ``None`` decodes all.
    Columns are viewed zero-copy; only the selected rows are unboxed.
    """
    buf = shm.buf
    header_len = int.from_bytes(bytes(buf[0:8]), "little")
    n, directory = pickle.loads(buf[8:8 + header_len])
    data_base = (8 + header_len + 7) & ~7
    rows = list(range(n)) if indices is None else list(indices)

    col_values: list[tuple[str, list]] = []
    for key, kind, meta, dtype, off, nbytes in directory:
        if kind == "pickle":
            col_values.append((key, [meta[i] for i in rows]))
            continue
        arr = np.frombuffer(buf, dtype=np.dtype(dtype),
                            count=nbytes // np.dtype(dtype).itemsize,
                            offset=data_base + off)
        picked = arr[rows].tolist()  # staticcheck: ignore[RA003] -- the row-subset gather IS the decode output copy
        if kind == "bool":
            col_values.append((key, [bool(v) for v in picked]))
        elif kind == "str":
            col_values.append((key, [meta[v] for v in picked]))
        else:                       # int / float: tolist() is exact
            col_values.append((key, picked))
    return [
        Configuration({key: vals[i] for key, vals in col_values})
        for i in range(len(rows))
    ]


def write_payload(obj, name: str | None = None) -> tuple[str, int]:
    """Pickle ``obj`` into a fresh segment; return ``(name, size)``.

    Used by pool workers for chunk results.  The segment is closed here
    and *unregistered from this process's resource tracker*: the parent
    consumes and unlinks it (:func:`read_payload`), and the worker's
    tracker must not unlink it first at worker exit.

    With an explicit ``name`` (parent-assigned), the caller owns
    uniqueness; a same-name leftover can only be a stale segment from a
    recycled pid, so it is unlinked and the create retried once.  The
    explicit name is what makes undelivered results reapable: the
    parent knows every name it assigned even when a broken pool eats
    the result tuple that would have carried it back.
    """
    data = pickle.dumps(obj, protocol=5)
    if name is None:
        shm = _new_segment(len(data), "r")
    else:
        try:
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(data)), name=name,
            )
        except FileExistsError:
            unlink_segment(name)
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(data)), name=name,
            )
    try:
        shm.buf[0:len(data)] = data
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    shm.close()
    # SharedMemory(create=True) registered the segment with *this*
    # process's resource tracker; ownership moves to the reader.
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # staticcheck: ignore[RF004] -- best-effort: unregister touches private stdlib API; failure only costs a spurious tracker warning at worker exit, never correctness
        pass
    return shm.name, len(data)


def read_payload(name: str, size: int, unlink: bool = True):
    """Load the object :func:`write_payload` stored under ``name``."""
    shm = shared_memory.SharedMemory(name=name)
    try:
        return pickle.loads(shm.buf[0:size])
    finally:
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


def unlink_segment(name: str) -> None:
    """Best-effort unlink of a segment by name (already-gone is fine)."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
