"""Batch evaluation engine: memoized, parallel candidate evaluation."""

from .cache import CacheStats, EvaluationCache, config_fingerprint
from .engine import EngineObjective, EvalRecord, EvalRequest, EvaluationEngine
from .executors import ParallelExecutor, SerialExecutor, default_worker_count
from .retry import FailureCounters, RetryError, RetryPolicy

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "config_fingerprint",
    "EvalRequest",
    "EvalRecord",
    "EvaluationEngine",
    "EngineObjective",
    "SerialExecutor",
    "ParallelExecutor",
    "default_worker_count",
    "RetryPolicy",
    "RetryError",
    "FailureCounters",
]
