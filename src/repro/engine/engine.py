"""Batch evaluation engine: memoized, executor-backed candidate evaluation.

The paper's provider-side vision only pays off if the provider can
evaluate *thousands* of candidate configurations cheaply ("more than
2000 configurations tested across 5 types of workloads").  The engine is
that layer: tuners hand it whole batches of candidates, it answers
repeats from an LRU cache (cross-tenant amortization, principle 3 of the
paper), dispatches the rest to a pluggable executor — in-process, or a
process pool with per-worker simulators — and reports hit/miss/latency
counters so the service can account for what tuning actually cost.

Determinism contract: every request carries its own noise seed, assigned
by the caller *before* dispatch, so a batch produces bit-identical
results whether it runs serially or across workers.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import Any, ClassVar

from ..cloud.cluster import Cluster
from ..cloud.interference import QUIET, Environment
from ..config.space import Configuration
from ..sparksim.costmodel import Calibration
from ..sparksim.metrics import ExecutionResult
from ..sparksim.simulator import SparkSimulator
from ..tuning.base import SimulationObjective
from .cache import CacheStats, EvaluationCache, config_fingerprint
from .executors import ParallelExecutor, SerialExecutor, default_worker_count
from .retry import FailureCounters, RetryError, RetryPolicy

__all__ = ["EvalRequest", "EvalRecord", "EvaluationEngine", "EngineObjective"]


@dataclass(frozen=True)
class EvalRequest:
    """One fully-resolved candidate evaluation."""

    workload: object                 # repro.workloads.Workload
    input_mb: float
    cluster: Cluster
    config: Configuration            # full Spark config, already resolved
    env: Environment = QUIET
    seed: int = 0
    #: dispatch attempt (0 = first try).  Deliberately NOT part of the
    #: cache key: results are pure functions of the request identity, so
    #: a retried request must answer — and memoize — identically.
    attempt: int = 0

    #: fields outside the evaluation identity; staticcheck rule RS006
    #: verifies cache_key() covers everything else and never reads these
    _cache_key_excluded: ClassVar[tuple[str, ...]] = ("attempt",)

    def cache_key(self) -> tuple:
        return (
            getattr(self.workload, "name", repr(self.workload)),
            float(self.input_mb),
            self.cluster,
            config_fingerprint(self.config),
            self.env,
            int(self.seed),
        )


@dataclass(frozen=True)
class EvalRecord:
    """One engine answer: the execution result plus provenance."""

    request: EvalRequest
    result: ExecutionResult
    cached: bool
    latency_s: float


class EvaluationEngine:
    """Evaluate batches of configurations through cache + executor.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"process"`` for a multiprocessing pool
        with per-worker simulators, or any object implementing
        ``run_batch(requests) -> list[ExecutionResult]``.
    cache_size:
        LRU capacity; 0 disables memoization entirely.
    retry:
        :class:`~repro.engine.retry.RetryPolicy` governing how dispatch
        failures (worker crashes, broken pools, timeouts) are retried and
        when the engine degrades to serial execution.  On by default;
        pass ``None`` to fail fast on the first executor error.
    """

    #: duck-typed: SerialExecutor, ParallelExecutor, or any run_batch() object
    _executor: Any

    def __init__(self, simulator: SparkSimulator | None = None,
                 executor: str | object = "serial",
                 max_workers: int | None = None,
                 cache_size: int = 4096,
                 calibration: Calibration | None = None,
                 noise: bool = True,
                 retry: RetryPolicy | None = RetryPolicy()):
        if simulator is None:
            simulator = SparkSimulator(calibration=calibration, noise=noise)
        self.simulator = simulator
        if executor == "serial":
            self._executor = SerialExecutor(simulator)
        elif executor == "process":
            # A pool of one worker is pure overhead (fork + pickle per
            # chunk with zero parallelism — the throughput bench measures
            # it *slower* than in-process), so "process" on a single-core
            # host resolves to the serial executor.
            effective_workers = max_workers or default_worker_count()
            if effective_workers <= 1:
                self._executor = SerialExecutor(simulator)
            else:
                store = getattr(simulator, "plan_store", None)
                self._executor = ParallelExecutor(
                    max_workers=effective_workers,
                    calibration=simulator.calibration,
                    noise=simulator.noise,
                    fault_plan=simulator.fault_plan,
                    plan_store_dir=(
                        store.directory if store is not None else None
                    ),
                )
        elif hasattr(executor, "run_batch"):
            self._executor = executor
        else:
            raise ValueError(
                "executor must be 'serial', 'process', or expose run_batch()"
            )
        self.retry = retry
        self.cache = EvaluationCache(capacity=cache_size) if cache_size else None
        # One batch in flight at a time: the cache, the hit/miss/latency
        # counters and above all the executor machinery (pool futures,
        # shared-memory segment reaping, the simulator's plan cache) are
        # single-owner structures.  The concurrent service front end may
        # call evaluate_batch from several threads; this lock makes that
        # safe — lost counter updates were real data races — while
        # parallelism comes from per-shard engines and the process pool
        # *inside* a dispatch, not from interleaved dispatches.
        self._lock = threading.Lock()
        self.failures = FailureCounters()
        self.n_evaluated = 0         # simulations actually run (cache misses)
        self.n_requested = 0         # total requests answered
        #: misses whose identity differs from a previously-seen request
        #: *only* by environment — the amortization the cross-tenant cache
        #: cannot deliver under interference (env is part of the key)
        self.n_env_distinct_misses = 0
        self._env_free_keys: set[tuple] = set()
        self._pool_failures = 0      # consecutive pool-level dispatch failures

    @property
    def stats(self) -> CacheStats:
        return self.cache.stats if self.cache is not None else CacheStats()

    @property
    def executor_kind(self) -> str:
        """Which executor is answering requests right now.

        ``"serial"`` / ``"process"``, or the class name of a custom
        executor.  Surfaces both the single-core resolution at
        construction and any mid-session degradation to serial.
        """
        if isinstance(self._executor, SerialExecutor):
            return "serial"
        if isinstance(self._executor, ParallelExecutor):
            return "process"
        return type(self._executor).__name__

    def counters(self) -> dict[str, Any]:
        """Flat snapshot: hit/miss/latency plus failure/retry/degradation."""
        snap: dict[str, Any] = dict(self.stats.snapshot())
        snap.update(n_requested=self.n_requested, n_evaluated=self.n_evaluated,
                    n_env_distinct_misses=self.n_env_distinct_misses)
        snap.update(self.failures.snapshot())
        snap["executor_kind"] = self.executor_kind
        utilization = getattr(self._executor, "utilization", None)
        if utilization is not None:
            snap["workers"] = utilization()
        return snap

    # --- evaluation ----------------------------------------------------------
    def evaluate(self, request: EvalRequest) -> EvalRecord:
        return self.evaluate_batch([request])[0]

    def evaluate_batch(self, requests) -> list[EvalRecord]:
        """Answer ``requests`` in order, via cache then executor.

        Duplicate requests inside one batch are simulated once and
        fanned out — population tuners re-propose elites, and a provider
        batch may carry the same candidate for several tenants.  Safe to
        call from multiple threads (batches are serialized internally;
        see ``_lock``).
        """
        with self._lock:
            return self._evaluate_batch_locked(list(requests))

    def _evaluate_batch_locked(self, requests) -> list[EvalRecord]:
        self.n_requested += len(requests)
        keys = [r.cache_key() for r in requests]
        records: list[EvalRecord | None] = [None] * len(requests)

        # Cache pass: answer known keys, dedup the rest.
        miss_of_key: dict[tuple, list[int]] = {}
        for i, (req, key) in enumerate(zip(requests, keys)):
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                records[i] = EvalRecord(req, hit, cached=True, latency_s=0.0)
            else:
                if key not in miss_of_key:
                    self._note_env_distinct(key)
                miss_of_key.setdefault(key, []).append(i)

        if miss_of_key:
            unique = [requests[slots[0]] for slots in miss_of_key.values()]
            start = time.perf_counter()
            results = self._dispatch(unique)
            elapsed = time.perf_counter() - start
            per_request = elapsed / len(unique)
            self.n_evaluated += len(unique)
            for (key, slots), result in zip(miss_of_key.items(), results):
                if self.cache is not None:
                    self.cache.put(key, result, latency_s=per_request)
                first = slots[0]
                for i in slots:
                    records[i] = EvalRecord(
                        requests[i], result,
                        cached=(i != first), latency_s=per_request,
                    )
        return records  # type: ignore[return-value]

    def _note_env_distinct(self, key: tuple) -> None:
        """Count misses that repeat a known request in a new environment.

        Under interference, ``env`` is part of the cache key, so the
        cross-tenant amortization story breaks: the same candidate
        re-proposed under different cloud weather re-simulates.  This
        counter quantifies exactly that lost amortization.  (A full key
        evicted from the LRU and re-missed counts too — rare at default
        capacity, and still a genuine re-simulation.)
        """
        env_free = key[:4] + (key[5],)      # identity minus the env slot
        if env_free in self._env_free_keys:
            self.n_env_distinct_misses += 1
        elif len(self._env_free_keys) < 65536:   # bounded diagnostic index
            self._env_free_keys.add(env_free)

    # --- fault-tolerant dispatch --------------------------------------------
    def _dispatch(self, requests) -> list[ExecutionResult]:
        """Run cache-miss requests through the executor, surviving failures.

        Each attempt re-dispatches only the requests that never produced
        a result; results are pure functions of the request (the
        ``attempt`` field is excluded from identity), so retries cannot
        change observations.  Broken pools are rebuilt, and repeated
        pool-level failures downgrade the engine to serial execution.
        """
        if self.retry is None:
            return self._executor.run_batch(requests)
        policy = self.retry
        results: list = [None] * len(requests)
        pending = list(range(len(requests)))
        for attempt in range(policy.max_attempts):
            batch = [
                replace(requests[i], attempt=attempt) if attempt else requests[i]
                for i in pending
            ]
            partial, error = self._run_attempt(batch, policy.batch_timeout_s)
            still_pending = []
            for slot, result in zip(pending, partial):
                if result is None:
                    still_pending.append(slot)
                else:
                    results[slot] = result
            if not still_pending:
                return results
            pending = still_pending
            self.failures.n_failures += len(pending)
            if isinstance(error, TimeoutError):
                self.failures.n_timeouts += 1
            if error is not None:
                self._handle_pool_failure()
            if attempt + 1 < policy.max_attempts:
                self.failures.n_retries += len(pending)
                time.sleep(policy.backoff_s(attempt, token=len(pending)))  # staticcheck: ignore[RA006] -- batches are serialized by contract; backoff is part of the in-flight batch
        # Attempts exhausted.  Last resort: answer the stragglers on the
        # in-process serial executor (a permanent downgrade), so a sick
        # harness degrades the engine instead of aborting the session.
        self.failures.n_exhausted += len(pending)
        self._degrade_to_serial()
        fallback = [
            replace(requests[i], attempt=policy.max_attempts) for i in pending
        ]
        try:
            answered = self._executor.run_batch(fallback)
        except Exception as exc:
            raise RetryError(
                f"{len(pending)} request(s) failed after "
                f"{policy.max_attempts} attempt(s) and the serial fallback"
            ) from exc
        for slot, result in zip(pending, answered):
            results[slot] = result
        return results

    def _run_attempt(self, batch, timeout_s):
        """One dispatch attempt: failed slots come back ``None`` + first error."""
        partial_fn = getattr(self._executor, "run_batch_partial", None)
        if partial_fn is not None:
            try:
                return partial_fn(batch, timeout_s=timeout_s)
            except Exception as exc:
                return [None] * len(batch), exc
        try:
            return list(self._executor.run_batch(batch)), None
        except Exception as exc:
            if len(batch) == 1:
                return [None], exc
        # Whole batch failed on an executor without partial support:
        # isolate per request so one poisoned request cannot sink the rest.
        results, error = [], None
        for request in batch:
            try:
                results.append(self._executor.run_batch([request])[0])
            except Exception as exc:
                if error is None:
                    error = exc
                results.append(None)
        return results, error

    def _handle_pool_failure(self) -> None:
        """Rebuild a broken pool; degrade to serial once failures repeat."""
        policy = self.retry
        if policy is None or not hasattr(self._executor, "rebuild"):
            return
        self._pool_failures += 1
        if self._pool_failures >= policy.degrade_after:
            self._degrade_to_serial()
        else:
            self._executor.rebuild()
            self.failures.n_pool_rebuilds += 1

    def _degrade_to_serial(self) -> None:
        """One-way downgrade to in-process execution (counted, auditable)."""
        if isinstance(self._executor, SerialExecutor):
            return
        try:
            self._executor.close()
        except Exception:  # staticcheck: ignore[RF004] -- best-effort close of an already-broken pool; n_degraded is bumped just below
            pass                     # a broken pool may refuse clean shutdown
        self._executor = SerialExecutor(self.simulator)
        self.failures.n_degraded += 1

    def close(self) -> None:
        self._executor.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class EngineObjective(SimulationObjective):
    """A :class:`SimulationObjective` whose executions ride an engine.

    Adds ``evaluate_batch(configs)`` — the protocol
    :func:`repro.tuning.base.run_tuner_batched` looks for — while staying
    a drop-in single-candidate callable.  All stateful bookkeeping
    (interference stepping, seeding, ledger charges) happens here in the
    parent, in request order, before dispatch; the engine and its
    workers only ever see pure ``EvalRequest``s.  Serial and parallel
    executors therefore produce identical observation histories.

    ``seed_mode`` controls per-candidate seeding:

    - ``"per-config"`` (default): the noise seed is a stable digest of
      the configuration, so re-evaluating a candidate is a cache hit —
      the amortization the provider-side service depends on.
    - ``"per-call"``: every call draws a fresh seed (matching
      :class:`SimulationObjective`); repeats re-simulate with new noise.
    """

    def __init__(self, engine: EvaluationEngine, workload, input_mb: float,
                 seed_mode: str = "per-config", **kwargs):
        if seed_mode not in ("per-config", "per-call"):
            raise ValueError("seed_mode must be 'per-config' or 'per-call'")
        kwargs.setdefault("simulator", engine.simulator)
        super().__init__(workload, input_mb, **kwargs)
        self.engine = engine
        self.seed_mode = seed_mode
        #: engine records of the most recent batch (per-candidate
        #: ExecutionResults + cache provenance, for session recording)
        self.last_records: list[EvalRecord] = []

    def _seed_for(self, spark_config: Configuration) -> int:
        if self.seed_mode == "per-config":
            digest = int(config_fingerprint(spark_config)[:12], 16)
            return (self._seed + digest) % (2**63)
        return self._seed + self.n_calls

    def _build_request(self, config) -> EvalRequest:
        cluster, spark_config = self.resolve(config)
        env = self.interference.step() if self.interference else QUIET
        self.n_calls += 1
        return EvalRequest(
            workload=self.workload, input_mb=self.input_mb, cluster=cluster,
            config=spark_config, env=env, seed=self._seed_for(spark_config),
        )

    def _settle(self, record: EvalRecord) -> tuple[float, bool]:
        """Turn an engine record into (cost, succeeded) + side effects."""
        result = record.result
        self.last_result = result
        if self.ledger is not None and not record.cached:
            # Cache hits are free: the provider already paid for that run.
            self.ledger.charge_tuning(record.request.cluster, result.runtime_s)
        runtime = result.effective_runtime(
            self.failure_penalty, self.failure_floor_s
        )
        cost = (
            record.request.cluster.cost_of(runtime)
            if self.metric == "price" else runtime
        )
        return cost, result.success

    def evaluate_batch(self, configs) -> list[tuple[float, bool]]:
        requests = [self._build_request(c) for c in configs]
        records = self.engine.evaluate_batch(requests)
        self.last_records = records
        return [self._settle(record) for record in records]

    def __call__(self, config) -> float:
        cost, _ = self.evaluate_batch([config])[0]
        return cost
