"""Memoization cache for simulated executions.

The provider-side tuning service re-evaluates the same configurations
constantly: population tuners re-visit elites every generation, repeated
tenants submit the same workloads, and re-tuning sessions re-probe
configurations the service has already paid for.  An LRU cache keyed on
the *full* evaluation identity — workload, input size, cluster, frozen
configuration, interference environment, and noise seed — makes each of
those repeats free while never conflating two genuinely different runs.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, Hashable

__all__ = ["config_fingerprint", "CacheStats", "EvaluationCache"]


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """Stable digest of a configuration's items.

    Python's built-in ``hash`` is salted per process (``PYTHONHASHSEED``),
    so it cannot key a cache that must agree across parallel workers and
    across runs.  This digest is derived from the sorted ``repr`` of the
    items, which is deterministic for the str/int/float/bool values
    configurations hold.
    """
    cached = getattr(config, "_fingerprint", None)
    if cached is not None:
        return cached
    # Configuration backs its Mapping interface with a plain dict;
    # hashing that directly skips the abc ItemsView iteration (the items
    # and therefore the digest are identical either way).
    values = getattr(config, "_values", None)
    items = values.items() if values is not None else config.items()
    payload = repr(sorted(items)).encode()
    digest = hashlib.blake2b(payload, digest_size=16).hexdigest()
    try:
        # Configuration reserves a slot for exactly this memo; other
        # mappings (plain dicts, test doubles) simply skip it.
        config._fingerprint = digest  # type: ignore[attr-defined]  # staticcheck: ignore[RF002] -- idempotent memo: the digest is a pure function of the mapping's contents
    except (AttributeError, TypeError):
        pass
    return digest


@dataclass
class CacheStats:
    """Hit/miss/latency counters for one :class:`EvaluationCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: wall-clock seconds spent computing the entries that missed
    miss_latency_s: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def mean_miss_latency_s(self) -> float:
        return self.miss_latency_s / self.misses if self.misses else 0.0

    @property
    def saved_latency_s(self) -> float:
        """Estimated wall-clock saved by hits (at the mean miss latency)."""
        return self.hits * self.mean_miss_latency_s

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "miss_latency_s": self.miss_latency_s,
            "saved_latency_s": self.saved_latency_s,
        }


@dataclass
class EvaluationCache:
    """Bounded LRU map from evaluation identity to execution result."""

    capacity: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """Return the cached value or ``None``, updating counters/recency."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value, latency_s: float = 0.0) -> None:
        """Insert ``value``, recording how long the miss took to compute."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        self.stats.miss_latency_s += latency_s
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
