"""Typed configuration spaces for tuning.

A :class:`ConfigurationSpace` is an ordered collection of named, typed
parameters.  It is the contract between the systems under tuning (Spark
simulator, cloud catalogue) and every tuner: tuners draw samples, encode
configurations into the unit hypercube for surrogate models, and decode
model suggestions back into valid configurations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Iterator, Mapping
from typing import Any

import numpy as np

__all__ = [
    "Parameter",
    "IntParameter",
    "FloatParameter",
    "BoolParameter",
    "CategoricalParameter",
    "Configuration",
    "ConfigurationSpace",
]


class Parameter(ABC):
    """A single named, typed tuning knob.

    Every parameter knows how to sample a value, map values to and from the
    unit interval (for vector encodings used by model-based tuners), and
    enumerate a grid of representative values.
    """

    def __init__(self, name: str, default: Any, description: str = ""):
        if not name:
            raise ValueError("parameter name must be non-empty")
        self.name = name
        self.default = default
        self.description = description

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniform random value for this parameter."""

    @abstractmethod
    def to_unit(self, value: Any) -> float:
        """Map ``value`` into [0, 1]."""

    @abstractmethod
    def from_unit(self, u: float) -> Any:
        """Inverse of :meth:`to_unit` (with rounding for discrete types)."""

    @abstractmethod
    def grid(self, resolution: int) -> list[Any]:
        """Return up to ``resolution`` representative values, ordered."""

    @abstractmethod
    def validate(self, value: Any) -> None:
        """Raise ``ValueError`` if ``value`` is not legal for this parameter."""

    def neighbor(self, value: Any, rng: np.random.Generator, scale: float = 0.15) -> Any:
        """Return a value near ``value``; used by local-search tuners."""
        u = self.to_unit(value)
        step = rng.normal(0.0, scale)
        return self.from_unit(min(1.0, max(0.0, u + step)))

    @property
    def cardinality(self) -> float:
        """Number of distinct values (``math.inf`` for continuous)."""
        return math.inf

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, default={self.default!r})"


class _NumericParameter(Parameter):
    """Shared behaviour for int/float ranges, optionally log-scaled."""

    def __init__(self, name, low, high, default=None, log=False, description=""):
        if low >= high:
            raise ValueError(f"{name}: low ({low}) must be < high ({high})")
        if log and low <= 0:
            raise ValueError(f"{name}: log-scaled parameters need low > 0")
        self.low = low
        self.high = high
        self.log = log
        # Unit-interval bounds are fixed at construction; sampling maps
        # through them on every draw, so compute the logs once.
        if log:
            self._unit_lo, self._unit_hi = math.log(low), math.log(high)
        else:
            self._unit_lo, self._unit_hi = float(low), float(high)
        if default is None:
            default = self.from_unit(0.5)
        super().__init__(name, default, description)
        self.validate(self.default)

    def _bounds_unit(self) -> tuple[float, float]:
        return self._unit_lo, self._unit_hi

    def to_unit(self, value) -> float:
        self.validate(value)
        lo, hi = self._bounds_unit()
        v = math.log(value) if self.log else float(value)
        return (v - lo) / (hi - lo)

    def _from_unit_float(self, u: float) -> float:
        u = min(1.0, max(0.0, float(u)))
        lo = self._unit_lo
        v = lo + u * (self._unit_hi - lo)
        return math.exp(v) if self.log else v


class IntParameter(_NumericParameter):
    """Integer-valued range parameter (inclusive bounds)."""

    def sample(self, rng: np.random.Generator) -> int:
        return self.from_unit(rng.random())

    def from_unit(self, u: float) -> int:
        return int(round(min(self.high, max(self.low, self._from_unit_float(u)))))

    def grid(self, resolution: int) -> list[int]:
        n = min(resolution, self.high - self.low + 1)
        values = sorted({self.from_unit(u) for u in np.linspace(0.0, 1.0, n)})
        return values

    def validate(self, value) -> None:
        if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
            raise ValueError(f"{self.name}: expected int, got {value!r}")
        if not self.low <= value <= self.high:
            raise ValueError(f"{self.name}: {value} outside [{self.low}, {self.high}]")

    @property
    def cardinality(self) -> float:
        return self.high - self.low + 1


class FloatParameter(_NumericParameter):
    """Real-valued range parameter (inclusive bounds)."""

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(rng.random())

    def from_unit(self, u: float) -> float:
        return float(min(self.high, max(self.low, self._from_unit_float(u))))

    def grid(self, resolution: int) -> list[float]:
        return [self.from_unit(u) for u in np.linspace(0.0, 1.0, max(2, resolution))]

    def validate(self, value) -> None:
        if not isinstance(value, (int, float, np.floating, np.integer)) or isinstance(value, bool):
            raise ValueError(f"{self.name}: expected float, got {value!r}")
        if not self.low <= value <= self.high:
            raise ValueError(f"{self.name}: {value} outside [{self.low}, {self.high}]")


class BoolParameter(Parameter):
    """Boolean flag parameter."""

    def __init__(self, name: str, default: bool = False, description: str = ""):
        super().__init__(name, bool(default), description)

    def sample(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < 0.5)

    def to_unit(self, value) -> float:
        self.validate(value)
        return 1.0 if value else 0.0

    def from_unit(self, u: float) -> bool:
        return bool(u >= 0.5)

    def grid(self, resolution: int) -> list[bool]:
        return [False, True]

    def validate(self, value) -> None:
        if not isinstance(value, (bool, np.bool_)):
            raise ValueError(f"{self.name}: expected bool, got {value!r}")

    def neighbor(self, value, rng: np.random.Generator, scale: float = 0.15) -> bool:
        # A local move on a flag is a flip with probability ~scale.
        if rng.random() < max(scale, 0.05) * 2:
            return not value
        return bool(value)

    @property
    def cardinality(self) -> float:
        return 2


class CategoricalParameter(Parameter):
    """Unordered choice among a finite set of values."""

    def __init__(self, name: str, choices, default=None, description: str = ""):
        choices = list(choices)
        if len(choices) < 2:
            raise ValueError(f"{name}: need at least 2 choices")
        if len(set(choices)) != len(choices):
            raise ValueError(f"{name}: duplicate choices")
        self.choices = choices
        super().__init__(name, choices[0] if default is None else default, description)
        self.validate(self.default)

    def sample(self, rng: np.random.Generator):
        return self.choices[int(rng.integers(len(self.choices)))]

    def to_unit(self, value) -> float:
        self.validate(value)
        idx = self.choices.index(value)
        if len(self.choices) == 1:
            return 0.0
        return idx / (len(self.choices) - 1)

    def from_unit(self, u: float):
        u = min(1.0, max(0.0, float(u)))
        idx = int(round(u * (len(self.choices) - 1)))
        return self.choices[idx]

    def grid(self, resolution: int) -> list[Any]:
        return list(self.choices)

    def validate(self, value) -> None:
        if value not in self.choices:
            raise ValueError(f"{self.name}: {value!r} not in {self.choices}")

    def neighbor(self, value, rng: np.random.Generator, scale: float = 0.15):
        if rng.random() < max(scale, 0.05) * 2:
            others = [c for c in self.choices if c != value]
            return others[int(rng.integers(len(others)))]
        return value

    @property
    def cardinality(self) -> float:
        return len(self.choices)


class Configuration(Mapping):
    """An immutable, hashable assignment of values to every space parameter."""

    # _fingerprint memoizes the engine's content digest
    # (repro.engine.cache.config_fingerprint), which keys caches and
    # derives per-config seeds — twice per evaluation on the hot path.
    # _grant memoizes the cluster-manager packing decision
    # (repro.config.constraints.grant_resources), likewise asked twice
    # per evaluation (tuner-side repair, then the simulator).
    __slots__ = ("_values", "_hash", "_fingerprint", "_grant")

    _values: dict[str, Any]
    _hash: int | None
    _fingerprint: str | None
    _grant: tuple[Any, Any] | None

    def __init__(self, values: Mapping[str, Any]):
        self._values = dict(values)
        self._hash = None
        self._fingerprint = None
        self._grant = None

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def get(self, key: str, default: Any = None) -> Any:
        # Mapping.get is a Python-level call into __getitem__; the cost
        # model asks for ~20 knobs per evaluation, so delegate to the
        # backing dict's C implementation.
        return self._values.get(key, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def replace(self, **updates: Any) -> "Configuration":
        """Return a copy with some values replaced."""
        merged = dict(self._values)
        merged.update(updates)
        return Configuration(merged)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._values)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(tuple(sorted(self._values.items(), key=lambda kv: kv[0])))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Configuration):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self._values.items()))
        return f"Configuration({body})"


class ConfigurationSpace:
    """An ordered collection of parameters defining the tuning search space.

    The space provides uniform sampling, unit-hypercube encoding/decoding
    used by surrogate-model tuners, neighbourhood moves for local search,
    and the total cardinality estimate the paper quotes (e.g. "30 Spark
    parameters exceed 10^40 configurations").
    """

    def __init__(self, parameters, name: str = "space"):
        self.name = name
        self._params: dict[str, Parameter] = {}
        for p in parameters:
            if p.name in self._params:
                raise ValueError(f"duplicate parameter {p.name!r}")
            self._params[p.name] = p
        if not self._params:
            raise ValueError("configuration space needs at least one parameter")

    @property
    def parameters(self) -> list[Parameter]:
        return list(self._params.values())

    @property
    def names(self) -> list[str]:
        return list(self._params.keys())

    @property
    def dimension(self) -> int:
        return len(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __getitem__(self, name: str) -> Parameter:
        return self._params[name]

    def subspace(self, names, name: str | None = None) -> "ConfigurationSpace":
        """Restrict to a subset of parameters (order preserved)."""
        missing = [n for n in names if n not in self._params]
        if missing:
            raise KeyError(f"unknown parameters: {missing}")
        keep = set(names)
        params = [p for p in self._params.values() if p.name in keep]
        return ConfigurationSpace(params, name=name or f"{self.name}-sub")

    def default_configuration(self) -> Configuration:
        return Configuration({p.name: p.default for p in self._params.values()})

    def sample_configuration(self, rng: np.random.Generator) -> Configuration:
        return Configuration({p.name: p.sample(rng) for p in self._params.values()})

    def sample_configurations(self, n: int, rng: np.random.Generator) -> list[Configuration]:
        return [self.sample_configuration(rng) for _ in range(n)]

    def validate(self, config: Mapping[str, Any]) -> None:
        """Raise ``ValueError`` unless ``config`` assigns a legal value to every parameter."""
        extra = set(config) - set(self._params)
        if extra:
            raise ValueError(f"unknown parameters: {sorted(extra)}")
        for p in self._params.values():
            if p.name not in config:
                raise ValueError(f"missing parameter {p.name!r}")
            p.validate(config[p.name])

    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a configuration as a vector in the unit hypercube."""
        return np.array(
            [p.to_unit(config[p.name]) for p in self._params.values()], dtype=float
        )

    def decode(self, vector: np.ndarray) -> Configuration:
        """Decode a unit-hypercube vector back into a configuration."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"expected vector of shape ({self.dimension},), got {vector.shape}"
            )
        values = {
            p.name: p.from_unit(u) for p, u in zip(self._params.values(), vector)
        }
        return Configuration(values)

    def neighbor(
        self,
        config: Configuration,
        rng: np.random.Generator,
        scale: float = 0.15,
        n_moves: int = 1,
    ) -> Configuration:
        """Perturb ``n_moves`` randomly chosen parameters of ``config``."""
        names = list(self._params)
        chosen = rng.choice(len(names), size=min(n_moves, len(names)), replace=False)
        updates = {}
        for i in np.atleast_1d(chosen):
            p = self._params[names[int(i)]]
            updates[p.name] = p.neighbor(config[p.name], rng, scale=scale)
        return config.replace(**updates)

    def latin_hypercube(self, n: int, rng: np.random.Generator) -> list[Configuration]:
        """Latin hypercube sample of ``n`` configurations (stratified per axis)."""
        if n < 1:
            raise ValueError("n must be >= 1")
        d = self.dimension
        # One stratified permutation per dimension.
        u = (rng.permuted(np.tile(np.arange(n), (d, 1)), axis=1).T + rng.random((n, d))) / n
        return [self.decode(row) for row in u]

    def log_cardinality(self) -> float:
        """log10 of the number of distinct configurations.

        Continuous parameters are counted at a conventional resolution of
        100 distinguishable levels, matching how the paper's "exceeds 10^40"
        style estimates are made.
        """
        total = 0.0
        for p in self._params.values():
            card = p.cardinality
            total += math.log10(100 if math.isinf(card) else card)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConfigurationSpace({self.name!r}, dim={self.dimension})"
