"""Feasibility of a Spark configuration on a concrete cluster.

Real cluster managers (YARN) grant fewer executors than requested when the
request does not fit node resources; grossly oversized single-executor
requests are rejected outright.  This module implements that packing
logic, used both by the simulator (to determine *granted* resources) and
by tuners that want to repair infeasible suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..cloud.cluster import Cluster
from .space import Configuration

__all__ = ["ResourceGrant", "grant_resources", "repair"]


@dataclass(frozen=True)
class ResourceGrant:
    """What the cluster manager actually allocates for an application."""

    executors: int               # granted executor count
    cores_per_executor: int
    memory_per_executor_mb: int  # heap, excluding overhead
    requested_executors: int

    @property
    def total_slots(self) -> int:
        return self.executors * self.cores_per_executor

    @property
    def fully_granted(self) -> bool:
        return self.executors == self.requested_executors


def _container_footprint_mb(config: Mapping) -> float:
    overhead = float(config.get("spark.executor.memoryOverheadFactor", 0.10))
    return float(config["spark.executor.memory"]) * (1.0 + overhead)


def grant_resources(config: Mapping, cluster: Cluster) -> ResourceGrant:
    """Pack requested executors onto cluster nodes.

    Returns a grant with ``executors == 0`` when even a single executor
    container cannot fit on a node — the "plausible but crashes" case the
    paper's Section IV warns about.

    The result is a pure function of an immutable configuration and
    cluster, and every evaluation asks twice (tuner-side repair, then
    the simulator), so it is memoized on the configuration.
    """
    cached = getattr(config, "_grant", None)
    if cached is not None and (cached[0] is cluster or cached[0] == cluster):
        return cached[1]
    requested = int(config["spark.executor.instances"])
    cores = int(config["spark.executor.cores"])
    node_mem = cluster.instance.memory_mb
    node_cores = cluster.instance.vcpus
    container_mb = _container_footprint_mb(config)

    # The driver occupies resources on one node (client/cluster deploy mode).
    driver_mb = float(config.get("spark.driver.memory", 1024))
    driver_cores = int(config.get("spark.driver.cores", 1))

    per_node_by_mem = int(node_mem // container_mb)
    per_node_by_cpu = node_cores // cores if cores <= node_cores else 0
    per_node = min(per_node_by_mem, per_node_by_cpu)
    if per_node <= 0:
        grant = ResourceGrant(
            0, cores, int(config["spark.executor.memory"]), requested,
        )
        _memoize_grant(config, cluster, grant)
        return grant

    # Driver node has reduced headroom.
    driver_node_mem = max(0.0, node_mem - driver_mb)
    driver_node_cores = max(0, node_cores - driver_cores)
    on_driver_node = min(
        int(driver_node_mem // container_mb),
        driver_node_cores // cores if cores <= driver_node_cores else 0,
    )
    capacity = on_driver_node + per_node * (cluster.count - 1)
    granted = min(requested, capacity)
    grant = ResourceGrant(
        executors=granted,
        cores_per_executor=cores,
        memory_per_executor_mb=int(config["spark.executor.memory"]),
        requested_executors=requested,
    )
    _memoize_grant(config, cluster, grant)
    return grant


def _memoize_grant(config, cluster: Cluster, grant: ResourceGrant) -> None:
    try:
        # Configuration reserves a slot for this memo; other mappings
        # (plain dicts, test doubles) simply skip it.
        config._grant = (cluster, grant)
    except (AttributeError, TypeError):
        pass


def repair(config: Configuration, cluster: Cluster) -> Configuration:
    """Clamp executor sizing so at least one executor fits per node.

    Leaves already-feasible configurations untouched.  Used by tuners that
    prefer repairing suggestions over observing crash penalties.
    """
    grant = grant_resources(config, cluster)
    if grant.executors > 0:
        return config
    node_mem = cluster.instance.memory_mb
    node_cores = cluster.instance.vcpus
    overhead = float(config.get("spark.executor.memoryOverheadFactor", 0.10))
    max_heap = int(node_mem / (1.0 + overhead) * 0.9)
    updates = {}
    if config["spark.executor.memory"] > max_heap:
        updates["spark.executor.memory"] = max(512, max_heap)
    if config["spark.executor.cores"] > node_cores:
        updates["spark.executor.cores"] = node_cores
    return config.replace(**updates)
