"""Feature encodings of configurations for surrogate models.

Two encoders are provided:

* :class:`UnitEncoder` — one column per parameter, values in [0, 1]
  (ordinal treatment of categoricals).  Compact; used by GP tuners.
* :class:`OneHotEncoder` — categoricals and booleans expand into indicator
  columns.  Used by tree ensembles and linear models, where ordinal
  treatment of unordered choices would invent spurious structure.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .space import (
    BoolParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
)

__all__ = ["UnitEncoder", "OneHotEncoder", "ConfigColumns"]


class ConfigColumns:
    """Struct-of-arrays view of a batch of configurations.

    Surrogate encoders map configurations into model feature spaces; this
    helper instead extracts *raw* parameter columns as numpy arrays, one
    value per candidate, for consumers that evaluate a whole batch of
    configurations in vectorized passes (the simulator's batch cost
    model).  Values are taken verbatim via ``Mapping.get``, so defaults
    match the scalar code paths that read the same keys.
    """

    def __init__(self, configs):
        self.configs = list(configs)
        self.n = len(self.configs)

    def floats(self, name: str, default=None) -> np.ndarray:
        return np.array(
            [float(c.get(name, default)) for c in self.configs], dtype=float,
        )

    def ints(self, name: str, default=None) -> np.ndarray:
        return np.array(
            [int(c.get(name, default)) for c in self.configs], dtype=np.int64,
        )

    def bools(self, name: str, default: bool = False) -> np.ndarray:
        return np.array(
            [bool(c.get(name, default)) for c in self.configs], dtype=bool,
        )

    def mapped(self, fn) -> np.ndarray:
        """One float per candidate via an arbitrary per-config function."""
        return np.array([fn(c) for c in self.configs], dtype=float)


class UnitEncoder:
    """Encode configurations as unit-hypercube vectors (invertible)."""

    def __init__(self, space: ConfigurationSpace):
        self.space = space

    @property
    def dimension(self) -> int:
        return self.space.dimension

    @property
    def feature_names(self) -> list[str]:
        return self.space.names

    def encode(self, config: Mapping) -> np.ndarray:
        return self.space.encode(config)

    def encode_many(self, configs) -> np.ndarray:
        return np.array([self.encode(c) for c in configs], dtype=float)

    def decode(self, vector: np.ndarray) -> Configuration:
        return self.space.decode(vector)


class OneHotEncoder:
    """Encode configurations with one-hot categoricals (not invertible)."""

    def __init__(self, space: ConfigurationSpace):
        self.space = space
        self._columns: list[tuple[str, object]] = []
        for p in space.parameters:
            if isinstance(p, CategoricalParameter):
                for choice in p.choices:
                    self._columns.append((p.name, choice))
            else:
                self._columns.append((p.name, None))

    @property
    def dimension(self) -> int:
        return len(self._columns)

    @property
    def feature_names(self) -> list[str]:
        names = []
        for pname, choice in self._columns:
            names.append(pname if choice is None else f"{pname}={choice}")
        return names

    def encode(self, config: Mapping) -> np.ndarray:
        row = np.zeros(len(self._columns), dtype=float)
        for j, (pname, choice) in enumerate(self._columns):
            p = self.space[pname]
            if choice is not None:
                row[j] = 1.0 if config[pname] == choice else 0.0
            elif isinstance(p, BoolParameter):
                row[j] = 1.0 if config[pname] else 0.0
            else:
                row[j] = p.to_unit(config[pname])
        return row

    def encode_many(self, configs) -> np.ndarray:
        return np.array([self.encode(c) for c in configs], dtype=float)
