"""Cloud configuration space: which VMs, and how many.

This is the first-stage search space of the paper's Fig. 1 — the knobs
CherryPick/PARIS explore.  The space is small but discrete and strongly
interacting with the DISC configuration (e.g. executor cores vs vCPUs).
"""

from __future__ import annotations

from ..cloud.instances import list_instances
from .space import CategoricalParameter, ConfigurationSpace, IntParameter

__all__ = ["cloud_space", "joint_space"]


def cloud_space(provider: str | None = None,
                min_nodes: int = 2, max_nodes: int = 20) -> ConfigurationSpace:
    """Cloud search space: instance type x cluster size.

    The 4-20 node range matches the paper's experimental clusters ("from
    4 VMs to 20 VMs").
    """
    names = sorted(t.name for t in list_instances(provider=provider))
    if not names:
        raise ValueError(f"no instances for provider {provider!r}")
    return ConfigurationSpace(
        [
            CategoricalParameter(
                "cloud.instance_type", names,
                default="m5.xlarge" if "m5.xlarge" in names else names[0],
                description="VM shape for every cluster node.",
            ),
            IntParameter(
                "cloud.cluster_size", min_nodes, max_nodes, default=4,
                description="Number of cluster nodes.",
            ),
        ],
        name=f"cloud-{provider or 'all'}",
    )


def joint_space(disc_space: ConfigurationSpace,
                provider: str | None = None,
                min_nodes: int = 2, max_nodes: int = 20) -> ConfigurationSpace:
    """The joint cloud + DISC space the paper argues must be tuned together."""
    cloud = cloud_space(provider, min_nodes, max_nodes)
    return ConfigurationSpace(
        cloud.parameters + disc_space.parameters,
        name=f"joint-{disc_space.name}",
    )
