"""Catalogue of Spark configuration parameters.

Mirrors the real Apache Spark configuration surface (the paper cites ~200
parameters; tuning studies such as BestConfig and DAC tune 30-41 of them).
We define the 32 parameters that dominate execution behaviour across
processing, memory, shuffle, serialization, and scheduling — the same
categories Section III.B of the paper enumerates.  Defaults follow the
Spark 2.x documentation, which is what the paper's prototype tuned.

Units: memory in MiB unless the name says otherwise, buffers in KiB where
real Spark uses KiB, time in seconds.
"""

from __future__ import annotations

from .space import (
    BoolParameter,
    CategoricalParameter,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
)

__all__ = [
    "spark_space",
    "spark_core_space",
    "SPARK_DEFAULTS",
    "TUNED_BY_PROTOTYPE",
]

# The subset our simulator's cost model responds to most strongly; a good
# tuner must also discover that the remaining knobs matter little — real
# spaces contain low-sensitivity dimensions and the paper's accuracy
# discussion (Section II.C) hinges on models coping with that.
TUNED_BY_PROTOTYPE = [
    "spark.executor.instances",
    "spark.executor.cores",
    "spark.executor.memory",
    "spark.memory.fraction",
    "spark.memory.storageFraction",
    "spark.default.parallelism",
    "spark.shuffle.compress",
    "spark.io.compression.codec",
    "spark.serializer",
    "spark.shuffle.file.buffer",
    "spark.reducer.maxSizeInFlight",
    "spark.speculation",
]


def _parameters():
    return [
        # --- Processing / resources -------------------------------------
        IntParameter(
            "spark.executor.instances", 1, 48, default=2,
            description="Number of executor processes requested for the application.",
        ),
        IntParameter(
            "spark.executor.cores", 1, 16, default=1,
            description="Concurrent task slots per executor.",
        ),
        IntParameter(
            "spark.executor.memory", 512, 65536, default=1024, log=True,
            description="Executor heap size (MiB).",
        ),
        IntParameter(
            "spark.driver.memory", 512, 16384, default=1024, log=True,
            description="Driver heap size (MiB).",
        ),
        IntParameter(
            "spark.driver.cores", 1, 8, default=1,
            description="Cores used by the driver process.",
        ),
        IntParameter(
            "spark.task.cpus", 1, 4, default=1,
            description="CPUs reserved per task.",
        ),
        IntParameter(
            "spark.default.parallelism", 8, 2000, default=16, log=True,
            description="Default number of partitions for shuffles and parallelize.",
        ),
        FloatParameter(
            "spark.executor.memoryOverheadFactor", 0.06, 0.4, default=0.10,
            description="Off-heap overhead as a fraction of executor memory.",
        ),
        # --- Memory management -------------------------------------------
        FloatParameter(
            "spark.memory.fraction", 0.3, 0.9, default=0.6,
            description="Fraction of heap for unified execution+storage memory.",
        ),
        FloatParameter(
            "spark.memory.storageFraction", 0.1, 0.9, default=0.5,
            description="Fraction of unified memory immune to execution eviction.",
        ),
        BoolParameter(
            "spark.memory.offHeap.enabled", default=False,
            description="Use off-heap memory for execution.",
        ),
        IntParameter(
            "spark.memory.offHeap.size", 0, 16384, default=0,
            description="Off-heap memory size (MiB) when enabled.",
        ),
        # --- Shuffle -------------------------------------------------------
        BoolParameter(
            "spark.shuffle.compress", default=True,
            description="Compress map output files.",
        ),
        BoolParameter(
            "spark.shuffle.spill.compress", default=True,
            description="Compress data spilled during shuffles.",
        ),
        IntParameter(
            "spark.shuffle.file.buffer", 16, 1024, default=32, log=True,
            description="In-memory buffer per shuffle file output stream (KiB).",
        ),
        IntParameter(
            "spark.reducer.maxSizeInFlight", 8, 512, default=48, log=True,
            description="Max map output fetched simultaneously per reducer (MiB).",
        ),
        IntParameter(
            "spark.shuffle.io.numConnectionsPerPeer", 1, 8, default=1,
            description="Connections reused between shuffle peers.",
        ),
        BoolParameter(
            "spark.shuffle.consolidateFiles", default=False,
            description="Consolidate intermediate shuffle files.",
        ),
        IntParameter(
            "spark.shuffle.sort.bypassMergeThreshold", 50, 1000, default=200,
            description="Reducer count under which sort shuffle bypasses merge.",
        ),
        # --- Serialization / compression ------------------------------------
        CategoricalParameter(
            "spark.serializer", ["java", "kryo"], default="java",
            description="Object serializer for shuffled/cached data.",
        ),
        CategoricalParameter(
            "spark.io.compression.codec", ["lz4", "snappy", "zstd"], default="lz4",
            description="Block compression codec.",
        ),
        IntParameter(
            "spark.io.compression.blockSize", 16, 512, default=32, log=True,
            description="Compression block size (KiB).",
        ),
        BoolParameter(
            "spark.rdd.compress", default=False,
            description="Compress serialized cached partitions.",
        ),
        IntParameter(
            "spark.kryoserializer.buffer.max", 8, 256, default=64, log=True,
            description="Maximum Kryo buffer (MiB).",
        ),
        # --- Storage / caching ------------------------------------------------
        CategoricalParameter(
            "spark.storage.level", ["MEMORY_ONLY", "MEMORY_AND_DISK", "MEMORY_ONLY_SER"],
            default="MEMORY_ONLY",
            description="Persistence level used for cached RDDs.",
        ),
        IntParameter(
            "spark.broadcast.blockSize", 1, 32, default=4,
            description="TorrentBroadcast block size (MiB).",
        ),
        # --- Scheduling ---------------------------------------------------------
        FloatParameter(
            "spark.locality.wait", 0.0, 10.0, default=3.0,
            description="Seconds to wait for data-local scheduling before degrading.",
        ),
        BoolParameter(
            "spark.speculation", default=False,
            description="Re-launch straggling tasks speculatively.",
        ),
        FloatParameter(
            "spark.speculation.multiplier", 1.1, 5.0, default=1.5,
            description="How many times slower than median a task must be to respeculate.",
        ),
        FloatParameter(
            "spark.speculation.quantile", 0.5, 0.95, default=0.75,
            description="Fraction of tasks that must finish before speculation.",
        ),
        IntParameter(
            "spark.scheduler.revive.interval", 1, 10, default=1,
            description="Seconds between scheduler offer revival rounds.",
        ),
        # --- Network -----------------------------------------------------------
        IntParameter(
            "spark.network.timeout", 60, 600, default=120,
            description="Default network timeout (s).",
        ),
    ]


def spark_space() -> ConfigurationSpace:
    """The full 32-parameter Spark tuning space."""
    return ConfigurationSpace(_parameters(), name="spark")


def spark_core_space() -> ConfigurationSpace:
    """The 12-parameter high-sensitivity subspace the prototype tuned."""
    return spark_space().subspace(TUNED_BY_PROTOTYPE, name="spark-core")


SPARK_DEFAULTS = {p.name: p.default for p in _parameters()}
