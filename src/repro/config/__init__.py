"""Configuration spaces, Spark/cloud parameter catalogues, and encodings."""

from .cloud_params import cloud_space, joint_space
from .constraints import ResourceGrant, grant_resources, repair
from .encoding import OneHotEncoder, UnitEncoder
from .space import (
    BoolParameter,
    CategoricalParameter,
    Configuration,
    ConfigurationSpace,
    FloatParameter,
    IntParameter,
    Parameter,
)
from .spark_params import SPARK_DEFAULTS, TUNED_BY_PROTOTYPE, spark_core_space, spark_space

__all__ = [
    "Parameter",
    "IntParameter",
    "FloatParameter",
    "BoolParameter",
    "CategoricalParameter",
    "Configuration",
    "ConfigurationSpace",
    "spark_space",
    "spark_core_space",
    "SPARK_DEFAULTS",
    "TUNED_BY_PROTOTYPE",
    "cloud_space",
    "joint_space",
    "grant_resources",
    "repair",
    "ResourceGrant",
    "OneHotEncoder",
    "UnitEncoder",
]
