"""Iterative model fitting (gradient descent) — the Ernest job shape.

Venkataraman et al.'s Ernest exploits exactly this structure: per
iteration, a full map over the (cached) training set followed by a tiny
tree-aggregation to the driver.  Runtime decomposes as
``a + b*(data/machines) + c*log(machines) + d*machines``, which is what
:mod:`repro.tuning.ernest` fits.
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["MLFit"]


class MLFit(Workload):
    """Gradient-descent model fitting: the Ernest job shape."""

    name = "mlfit"
    category = "ml"
    inputs = EvolvingInput(ds1_mb=4_000, ds2_mb=12_000, ds3_mb=40_000)

    def __init__(self, iterations: int = 8, cpu_scale: float = 1.0):
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        self.iterations = iterations
        self.cpu_scale = cpu_scale

    def jobs(self, input_mb: float) -> list[Job]:
        c = self.cpu_scale
        data = RDD.source("training", input_mb, record_bytes=80).map(
            "parseVectors", cpu_s_per_mb=0.010 * c
        ).cache()
        jobs = [data.count("materializeTraining")]
        for i in range(self.iterations):
            grads = data.map(
                f"gradients-{i}", cpu_s_per_mb=0.045 * c, size_ratio=0.002
            )
            agg = grads.reduce_by_key(
                f"treeAggregate-{i}", cpu_s_per_mb=0.004 * c, size_ratio=1.0,
            )
            jobs.append(agg.collect(f"step-{i}", result_fraction=1.0))
        return jobs
