"""Workload abstraction and evolving-input descriptors.

A :class:`Workload` builds the Spark jobs (RDD lineages + actions) for a
given logical input size.  Workloads also declare their HiBench-style
evolving dataset sizes (DS1 < DS2 < DS3), used throughout the paper's
Section IV.B experiment.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..sparksim.rdd import Job

__all__ = ["Workload", "EvolvingInput"]


@dataclass(frozen=True)
class EvolvingInput:
    """Named evolving dataset sizes for one workload (MB)."""

    ds1_mb: float
    ds2_mb: float
    ds3_mb: float

    def __post_init__(self):
        if not 0 < self.ds1_mb < self.ds2_mb < self.ds3_mb:
            raise ValueError("dataset sizes must satisfy 0 < DS1 < DS2 < DS3")

    def size(self, label: str) -> float:
        sizes = {"DS1": self.ds1_mb, "DS2": self.ds2_mb, "DS3": self.ds3_mb}
        try:
            return sizes[label]
        except KeyError:
            raise KeyError(f"unknown dataset label {label!r}; use DS1/DS2/DS3") from None

    def labels(self) -> list[str]:
        return ["DS1", "DS2", "DS3"]


class Workload(ABC):
    """A parameterized analytics application."""

    #: unique registry key, e.g. "pagerank"
    name: str = ""
    #: coarse category used in reports: "micro", "graph", "ml", "sql", "websearch"
    category: str = ""
    #: default evolving input sizes
    inputs: EvolvingInput

    @abstractmethod
    def jobs(self, input_mb: float) -> list[Job]:
        """Build the job sequence for a run over ``input_mb`` of input."""

    def describe(self) -> str:
        return f"{self.name} ({self.category})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workload {self.name}>"
