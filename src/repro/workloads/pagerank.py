"""PageRank — iterative, cache- and shuffle-bound graph analytics.

Each iteration joins the (cached) adjacency lists with the current ranks
and shuffles contributions, so performance depends strongly on whether
the graph fits in storage memory, on partition counts, and on shuffle
configuration — all of which shift with input size.  This is the
workload Table I shows saving up to 56 % from re-tuning at DS3.
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["PageRank"]


class PageRank(Workload):
    """Iterative graph ranking over a cached adjacency list."""

    name = "pagerank"
    category = "graph"
    inputs = EvolvingInput(ds1_mb=5_000, ds2_mb=12_000, ds3_mb=40_000)

    def __init__(self, iterations: int = 6, cpu_scale: float = 1.0):
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        self.iterations = iterations
        self.cpu_scale = cpu_scale

    def jobs(self, input_mb: float) -> list[Job]:
        c = self.cpu_scale
        edges = RDD.source("edges", input_mb, record_bytes=24)
        links = edges.map("parseEdges", cpu_s_per_mb=0.010 * c).group_by_key(
            "groupLinks"
        ).cache()
        jobs = [links.count("materializeLinks")]

        ranks = links.map("initRanks", cpu_s_per_mb=0.004 * c, size_ratio=0.06).cache()
        jobs.append(ranks.count("materializeRanks"))

        prev = ranks
        for i in range(self.iterations):
            contribs = links.join(ranks, f"join-{i}", cpu_s_per_mb=0.020 * c)
            spread = contribs.flat_map(
                f"contribs-{i}", cpu_s_per_mb=0.018 * c, size_ratio=0.25
            )
            # reduce back to the rank-vector size (~6% of the input)
            new_ranks = spread.reduce_by_key(
                f"updateRanks-{i}", cpu_s_per_mb=0.012 * c, size_ratio=0.23
            ).cache()
            jobs.append(new_ranks.count(f"iterate-{i}").then_unpersist(prev))
            prev = new_ranks
            ranks = new_ranks
        return jobs
