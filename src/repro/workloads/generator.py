"""Synthetic workload variants and evolving-input generators.

Transfer-learning experiments (paper Section V.B) need *families* of
similar-but-not-identical workloads: the provider's history contains a
neighbour's PageRank over a different graph, not yours.  ``variant_of``
perturbs a workload's computational profile; ``evolving_sizes`` produces
growth sequences beyond the canned DS1/DS2/DS3.
"""

from __future__ import annotations

import numpy as np

from .base import EvolvingInput, Workload

__all__ = ["variant_of", "evolving_sizes", "workload_family"]


def variant_of(base: Workload, name: str | None = None,
               cpu_scale: float = 1.0) -> Workload:
    """A workload with the same structure but scaled computational cost.

    Every suite workload accepts a ``cpu_scale`` constructor argument;
    the variant is a fresh instance with its own registry name.
    """
    if cpu_scale <= 0:
        raise ValueError("cpu_scale must be positive")
    variant = type(base)(cpu_scale=cpu_scale)
    variant.name = name or f"{base.name}-x{cpu_scale:g}"
    return variant


def workload_family(base_cls, n: int, rng: np.random.Generator,
                    spread: float = 0.35) -> list[Workload]:
    """``n`` workloads of the same shape with log-normally spread CPU costs."""
    if n < 1:
        raise ValueError("n must be >= 1")
    members = []
    for i in range(n):
        scale = float(rng.lognormal(mean=0.0, sigma=spread))
        w = base_cls(cpu_scale=scale)
        w.name = f"{w.name}-v{i}"
        members.append(w)
    return members


def evolving_sizes(base_mb: float, growth: float, steps: int) -> list[float]:
    """Geometric input-size growth: the "ever growing data sets" of §IV.B."""
    if base_mb <= 0 or growth <= 1.0 or steps < 1:
        raise ValueError("need base_mb > 0, growth > 1, steps >= 1")
    return [base_mb * growth**i for i in range(steps)]


def evolving_input(base_mb: float, growth: float = 3.0) -> EvolvingInput:
    """An :class:`EvolvingInput` with geometric DS1/DS2/DS3."""
    ds = evolving_sizes(base_mb, growth, 3)
    return EvolvingInput(*ds)
