"""SQL micro-benchmarks: Scan and Aggregation (HiBench's SQL category).

``Scan`` is a selective table scan with projection — almost purely
IO-bound, even flatter than Wordcount across configurations.
``Aggregation`` is a full group-by over a high-cardinality key — the
shuffle carries a large fraction of the table and the aggregation hash
tables stress execution memory.
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["Scan", "Aggregation"]


class Scan(Workload):
    """Selective table scan with projection: IO-bound, config-flat."""

    name = "scan"
    category = "sql"
    inputs = EvolvingInput(ds1_mb=15_000, ds2_mb=45_000, ds3_mb=150_000)

    def __init__(self, cpu_scale: float = 1.0, selectivity: float = 0.1):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if not 0 < selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        self.cpu_scale = cpu_scale
        self.selectivity = selectivity

    def jobs(self, input_mb: float) -> list[Job]:
        table = RDD.source("table", input_mb, record_bytes=180)
        filtered = table.filter("predicate", cpu_s_per_mb=0.004 * self.cpu_scale,
                                keep=self.selectivity)
        projected = filtered.map("project", cpu_s_per_mb=0.003 * self.cpu_scale,
                                 size_ratio=0.6)
        return [projected.save("writeResult")]


class Aggregation(Workload):
    """Full group-by over a high-cardinality key: shuffle/memory-bound."""

    name = "aggregation"
    category = "sql"
    inputs = EvolvingInput(ds1_mb=8_000, ds2_mb=20_000, ds3_mb=50_000)

    def __init__(self, cpu_scale: float = 1.0, group_ratio: float = 0.4):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if not 0 < group_ratio <= 1:
            raise ValueError("group_ratio must be in (0, 1]")
        self.cpu_scale = cpu_scale
        self.group_ratio = group_ratio

    def jobs(self, input_mb: float) -> list[Job]:
        table = RDD.source("uservisits", input_mb, record_bytes=160)
        keyed = table.map("extractKey", cpu_s_per_mb=0.008 * self.cpu_scale)
        grouped = keyed.group_by_key("groupBy", cpu_s_per_mb=0.014 * self.cpu_scale)
        aggregated = grouped.map("aggregate", cpu_s_per_mb=0.010 * self.cpu_scale,
                                 size_ratio=self.group_ratio * 0.2)
        return [aggregated.save("writeAggregates")]
