"""Sort and TeraSort — shuffle-saturating micro-benchmarks.

The full dataset crosses the shuffle, so these stress network bandwidth,
shuffle buffers, compression choices and execution memory (sort runs
spill when partitions are too coarse).
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["Sort", "TeraSort"]


class Sort(Workload):
    """Full-shuffle sort: every input byte crosses the network."""

    name = "sort"
    category = "micro"
    inputs = EvolvingInput(ds1_mb=5_000, ds2_mb=15_000, ds3_mb=50_000)

    def __init__(self, cpu_scale: float = 1.0):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        self.cpu_scale = cpu_scale

    def jobs(self, input_mb: float) -> list[Job]:
        records = RDD.source("records", input_mb, record_bytes=100)
        parsed = records.map("parse", cpu_s_per_mb=0.005 * self.cpu_scale)
        ordered = parsed.sort_by("sort", cpu_s_per_mb=0.022 * self.cpu_scale)
        return [ordered.save("saveSorted")]


class TeraSort(Workload):
    """TeraSort: fixed 100-byte records, minimal parsing, full output write."""

    name = "terasort"
    category = "micro"
    inputs = EvolvingInput(ds1_mb=10_000, ds2_mb=30_000, ds3_mb=100_000)

    def __init__(self, cpu_scale: float = 1.0):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        self.cpu_scale = cpu_scale

    def jobs(self, input_mb: float) -> list[Job]:
        records = RDD.source("teragen", input_mb, record_bytes=100)
        keyed = records.map("extractKey", cpu_s_per_mb=0.003 * self.cpu_scale)
        ordered = keyed.sort_by("terasort", cpu_s_per_mb=0.018 * self.cpu_scale)
        return [ordered.save("teraoutput")]
