"""HiBench-style workload suite over the RDD lineage API."""

from .base import EvolvingInput, Workload
from .bayes import BayesClassifier
from .generator import evolving_input, evolving_sizes, variant_of, workload_family
from .kmeans import KMeans
from .mlfit import MLFit
from .pagerank import PageRank
from .sort import Sort, TeraSort
from .sql import SqlJoinAgg
from .sqlmicro import Aggregation, Scan
from .suite import SUITE, TABLE1_WORKLOADS, all_workloads, get_workload
from .wordcount import Wordcount

__all__ = [
    "Workload",
    "EvolvingInput",
    "Wordcount",
    "Scan",
    "Aggregation",
    "Sort",
    "TeraSort",
    "PageRank",
    "BayesClassifier",
    "KMeans",
    "SqlJoinAgg",
    "MLFit",
    "SUITE",
    "TABLE1_WORKLOADS",
    "get_workload",
    "all_workloads",
    "variant_of",
    "workload_family",
    "evolving_sizes",
    "evolving_input",
]
