"""Wordcount — the scan-bound HiBench micro-benchmark.

Map-heavy with a tiny shuffle (word histograms), so runtime is dominated
by input scanning and per-record CPU.  This is the workload Table I of
the paper shows gaining ~nothing from re-tuning as input grows (0-3 %):
almost any feasible configuration is near-optimal.
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["Wordcount"]


class Wordcount(Workload):
    """Map-heavy text wordcount with a near-constant combined shuffle."""

    name = "wordcount"
    category = "micro"
    inputs = EvolvingInput(ds1_mb=20_000, ds2_mb=60_000, ds3_mb=200_000)

    def __init__(self, cpu_scale: float = 1.0, vocabulary_mb: float = 200.0):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if vocabulary_mb <= 0:
            raise ValueError("vocabulary_mb must be positive")
        self.cpu_scale = cpu_scale
        self.vocabulary_mb = vocabulary_mb

    def jobs(self, input_mb: float) -> list[Job]:
        text = RDD.source("text", input_mb, record_bytes=80)
        words = text.flat_map("split", cpu_s_per_mb=0.012 * self.cpu_scale, size_ratio=1.05)
        pairs = words.map("pair", cpu_s_per_mb=0.004 * self.cpu_scale, size_ratio=1.0)
        # Map-side combining caps the shuffle at (vocabulary x map tasks):
        # shuffled volume is near-constant, not proportional to the input.
        shuffle_mb = min(self.vocabulary_mb, 0.02 * input_mb * 1.05)
        counts = pairs.reduce_by_key(
            "count", cpu_s_per_mb=0.010 * self.cpu_scale,
            size_ratio=shuffle_mb / (input_mb * 1.05),
        )
        return [counts.save("saveCounts")]
