"""Naive Bayes classifier training — HiBench's e-commerce text workload.

Tokenization plus per-class term-count aggregation: moderately shuffle-
and memory-sensitive, sitting between Wordcount and PageRank in how much
re-tuning helps as input grows (Table I shows 17 % / 25 %).
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["BayesClassifier"]


class BayesClassifier(Workload):
    """Naive Bayes training: tokenize, vectorize, group term counts."""

    name = "bayes"
    category = "ml"
    inputs = EvolvingInput(ds1_mb=10_000, ds2_mb=25_000, ds3_mb=60_000)

    def __init__(self, cpu_scale: float = 1.0, num_classes: int = 20):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if num_classes < 2:
            raise ValueError("need at least two classes")
        self.cpu_scale = cpu_scale
        self.num_classes = num_classes

    def jobs(self, input_mb: float) -> list[Job]:
        c = self.cpu_scale
        docs = RDD.source("documents", input_mb, record_bytes=200)
        tokens = docs.flat_map("tokenize", cpu_s_per_mb=0.016 * c, size_ratio=1.15)
        features = tokens.map("vectorize", cpu_s_per_mb=0.022 * c, size_ratio=0.80)
        counts = features.group_by_key("termCountsByClass", cpu_s_per_mb=0.014 * c)
        model = counts.map("normalizeModel", cpu_s_per_mb=0.006 * c, size_ratio=0.05)
        jobs = [model.collect("collectModel", result_fraction=0.02)]

        # Evaluation pass over the training documents.
        scored = docs.map("scoreDocs", cpu_s_per_mb=0.030 * c, size_ratio=0.10)
        confusion = scored.reduce_by_key(
            "byClass", cpu_s_per_mb=0.008 * c, size_ratio=0.30,
        )
        jobs.append(confusion.count("evaluate"))
        return jobs
