"""SQL-style join + aggregation — the TPC-H-like analytic query shape.

A fact/dimension shuffle join followed by a grouped aggregation: join
hash tables make this the most OOM-prone workload in the suite, and the
one Ernest-style ML-specific models adapt to worst (the paper's "poor
adaptivity" criticism).
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["SqlJoinAgg"]


class SqlJoinAgg(Workload):
    """Fact/dimension shuffle join followed by a grouped aggregation."""

    name = "sql-join-agg"
    category = "sql"
    inputs = EvolvingInput(ds1_mb=6_000, ds2_mb=18_000, ds3_mb=60_000)

    def __init__(self, cpu_scale: float = 1.0, selectivity: float = 0.5,
                 dim_fraction: float = 0.2):
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        if not 0 < selectivity <= 1:
            raise ValueError("selectivity must be in (0, 1]")
        if not 0 < dim_fraction < 1:
            raise ValueError("dim_fraction must be in (0, 1)")
        self.cpu_scale = cpu_scale
        self.selectivity = selectivity
        self.dim_fraction = dim_fraction

    def jobs(self, input_mb: float) -> list[Job]:
        c = self.cpu_scale
        fact_mb = input_mb * (1.0 - self.dim_fraction)
        dim_mb = input_mb * self.dim_fraction
        fact = RDD.source("fact", fact_mb, record_bytes=150)
        dim = RDD.source("dim", dim_mb, record_bytes=120)
        f = fact.map("scanFilterFact", cpu_s_per_mb=0.007 * c,
                     size_ratio=self.selectivity)
        d = dim.map("projectDim", cpu_s_per_mb=0.006 * c, size_ratio=0.7)
        joined = f.join(d, "shuffleHashJoin", cpu_s_per_mb=0.024 * c)
        projected = joined.map("project", cpu_s_per_mb=0.004 * c, size_ratio=0.6)
        aggregated = projected.reduce_by_key(
            "groupAgg", cpu_s_per_mb=0.012 * c, size_ratio=0.08,
        )
        return [aggregated.collect("collectResult", result_fraction=0.05)]
