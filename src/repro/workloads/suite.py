"""Workload registry — the HiBench-style suite.

The paper's prototype ran "5 types of workloads" from "a popular big data
benchmark" (HiBench); this registry exposes eight covering the same
categories (micro, websearch/graph, ML, SQL).
"""

from __future__ import annotations

from .base import Workload
from .bayes import BayesClassifier
from .kmeans import KMeans
from .mlfit import MLFit
from .pagerank import PageRank
from .sort import Sort, TeraSort
from .sql import SqlJoinAgg
from .sqlmicro import Aggregation, Scan
from .wordcount import Wordcount

__all__ = ["SUITE", "get_workload", "all_workloads", "TABLE1_WORKLOADS"]

SUITE: dict[str, type] = {
    "wordcount": Wordcount,
    "sort": Sort,
    "terasort": TeraSort,
    "pagerank": PageRank,
    "bayes": BayesClassifier,
    "kmeans": KMeans,
    "sql-join-agg": SqlJoinAgg,
    "mlfit": MLFit,
    "scan": Scan,
    "aggregation": Aggregation,
}

#: the three workloads of the paper's Table I experiment
TABLE1_WORKLOADS = ["pagerank", "bayes", "wordcount"]


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a suite workload by registry name."""
    try:
        cls = SUITE[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(SUITE)}") from None
    return cls(**kwargs)


def all_workloads() -> list[Workload]:
    """Instantiate every suite workload with default parameters."""
    return [cls() for cls in SUITE.values()]
