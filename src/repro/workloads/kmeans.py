"""K-Means clustering — iterative, CPU-bound, cache-sensitive ML.

Each iteration scans the (cached) point set computing distances and
shuffles only tiny centroid partial sums, so the cache hit rate and CPU
configuration dominate; shuffle knobs barely matter.
"""

from __future__ import annotations

from ..sparksim.rdd import RDD, Job
from .base import EvolvingInput, Workload

__all__ = ["KMeans"]


class KMeans(Workload):
    """Iterative clustering: CPU-heavy scans of a cached point set."""

    name = "kmeans"
    category = "ml"
    inputs = EvolvingInput(ds1_mb=4_000, ds2_mb=12_000, ds3_mb=40_000)

    def __init__(self, iterations: int = 6, k: int = 10, cpu_scale: float = 1.0):
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if k < 2:
            raise ValueError("k must be >= 2")
        if cpu_scale <= 0:
            raise ValueError("cpu_scale must be positive")
        self.iterations = iterations
        self.k = k
        self.cpu_scale = cpu_scale

    def jobs(self, input_mb: float) -> list[Job]:
        c = self.cpu_scale
        points = RDD.source("points", input_mb, record_bytes=60).map(
            "parsePoints", cpu_s_per_mb=0.008 * c
        ).cache()
        jobs = [points.count("materializePoints")]
        # Distance cost grows with k.
        assign_cpu = 0.006 * self.k * c
        for i in range(self.iterations):
            partials = points.map(
                f"assign-{i}", cpu_s_per_mb=assign_cpu, size_ratio=0.012
            )
            sums = partials.reduce_by_key(
                f"centroidSums-{i}", cpu_s_per_mb=0.008 * c, size_ratio=1.0,
            )
            jobs.append(sums.collect(f"newCentroids-{i}", result_fraction=1.0))
        return jobs
