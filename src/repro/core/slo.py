"""Tuning-effectiveness SLOs (paper Sections IV.D and V.C).

"Jobs should run within X% of the optimal runtime" — the paper proposes
this as the language for a new class of SLOs, while acknowledging the
optimal is unknowable and listing candidate substitutes: distance from
the best configuration found for a *similar* workload, or improvement
over the default configuration.  All three metrics are implemented so
the E4 bench can compare their behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["SLOMetric", "TuningSLO", "SLOReport", "evaluate_slo"]


class SLOMetric(Enum):
    """Candidate definitions of 'optimal' for the SLO denominator."""

    #: distance from the true optimal runtime (measurable only in
    #: simulation / exhaustive studies — the aspirational metric)
    WITHIN_OPTIMAL = "within_optimal"
    #: distance from the best runtime of similar workloads ever run in
    #: the cloud (the paper's suggested practical replacement)
    WITHIN_BEST_SIMILAR = "within_best_similar"
    #: improvement over the default configuration
    IMPROVEMENT_OVER_DEFAULT = "improvement_over_default"


@dataclass(frozen=True)
class TuningSLO:
    """An agreed target, e.g. 'within 20% of optimal'."""

    metric: SLOMetric
    target_fraction: float

    def __post_init__(self):
        if self.target_fraction < 0:
            raise ValueError("target_fraction must be non-negative")


@dataclass(frozen=True)
class SLOReport:
    """Outcome of evaluating one SLO for one tuned workload."""

    slo: TuningSLO
    achieved_runtime_s: float
    reference_runtime_s: float
    value: float          # metric value (distance fraction or improvement)
    attained: bool
    #: paid executions spent *measuring the reference itself* (e.g. the
    #: default-configuration run behind IMPROVEMENT_OVER_DEFAULT) — part
    #: of the tenant's bill, audited here so it can never be silently
    #: charged outside the deployment's evaluation count again
    reference_evaluations: int = 0

    def describe(self) -> str:
        if self.slo.metric is SLOMetric.IMPROVEMENT_OVER_DEFAULT:
            return (
                f"improvement over default: {self.value:.1%} "
                f"(target >= {self.slo.target_fraction:.0%}) -> "
                f"{'ATTAINED' if self.attained else 'MISSED'}"
            )
        return (
            f"within {self.value:.1%} of {self.slo.metric.value} "
            f"(target <= {self.slo.target_fraction:.0%}) -> "
            f"{'ATTAINED' if self.attained else 'MISSED'}"
        )


def evaluate_slo(slo: TuningSLO, achieved_runtime_s: float,
                 reference_runtime_s: float,
                 reference_evaluations: int = 0) -> SLOReport:
    """Evaluate ``achieved`` against ``reference`` under the SLO's metric.

    ``reference`` means: the optimal runtime (WITHIN_OPTIMAL), the best
    similar workload's runtime (WITHIN_BEST_SIMILAR), or the default-
    configuration runtime (IMPROVEMENT_OVER_DEFAULT).
    ``reference_evaluations`` audits any paid executions it took to
    *measure* that reference.
    """
    if achieved_runtime_s <= 0 or reference_runtime_s <= 0:
        raise ValueError("runtimes must be positive")
    # Attainment carries a 1e-9 relative slack: a runtime sitting exactly
    # on the target boundary must not flip on the last ulp of the
    # achieved/reference division.
    if slo.metric is SLOMetric.IMPROVEMENT_OVER_DEFAULT:
        value = (reference_runtime_s - achieved_runtime_s) / reference_runtime_s
        attained = value >= slo.target_fraction - 1e-9
    else:
        value = achieved_runtime_s / reference_runtime_s - 1.0
        attained = achieved_runtime_s <= (
            reference_runtime_s * (1.0 + slo.target_fraction)
            + 1e-9 * reference_runtime_s
        )
    return SLOReport(
        slo=slo,
        achieved_runtime_s=achieved_runtime_s,
        reference_runtime_s=reference_runtime_s,
        value=value,
        attained=attained,
        reference_evaluations=reference_evaluations,
    )
