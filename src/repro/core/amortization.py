"""Tuning-cost amortization analysis (paper Section IV.C).

"The cost of workload tuning should not outweigh the runtime cost of the
workload before it requires re-tuning."  The paper's worked example:
BestConfig's 500 tuning executions consume more resources than the ~90
production runs of an exemplar workload over 3 months.  This module
computes break-even points, net savings over a recurrence horizon, and
the user-side cost under provider-side offloading.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AmortizationInputs", "AmortizationReport", "analyze_amortization"]


@dataclass(frozen=True)
class AmortizationInputs:
    """Everything the amortization calculation needs."""

    tuning_cost_usd: float              # total cost of the tuning campaign
    default_run_cost_usd: float         # production run cost, untuned
    tuned_run_cost_usd: float           # production run cost, tuned
    runs_per_month: float               # workload recurrence rate
    months_until_retuning: float        # lifetime of the tuned config
    #: fraction of tuning cost borne by the user (1.0 = today's isolated
    #: tuning; 0.0 = the paper's vision of full provider-side offload)
    user_cost_share: float = 1.0

    def __post_init__(self):
        if min(self.tuning_cost_usd, self.default_run_cost_usd,
               self.tuned_run_cost_usd) < 0:
            raise ValueError("costs must be non-negative")
        if self.runs_per_month < 0 or self.months_until_retuning < 0:
            raise ValueError("rates must be non-negative")
        if not 0.0 <= self.user_cost_share <= 1.0:
            raise ValueError("user_cost_share must be in [0, 1]")


@dataclass(frozen=True)
class AmortizationReport:
    """Break-even and net-saving outcomes."""

    saving_per_run_usd: float
    runs_before_retuning: float
    breakeven_runs: float               # inf when tuning never pays off
    breakeven_months: float
    amortizes: bool                     # pays off before re-tuning is needed
    net_saving_usd: float               # over the config's lifetime, user side
    user_tuning_cost_usd: float

    def describe(self) -> str:
        status = "amortizes" if self.amortizes else "does NOT amortize"
        return (
            f"tuning {status}: breakeven at {self.breakeven_runs:.0f} runs "
            f"({self.breakeven_months:.1f} months), "
            f"{self.runs_before_retuning:.0f} runs available, "
            f"net user saving ${self.net_saving_usd:.2f}"
        )


def analyze_amortization(inputs: AmortizationInputs) -> AmortizationReport:
    """Compute break-even and net savings for a tuning campaign."""
    saving = inputs.default_run_cost_usd - inputs.tuned_run_cost_usd
    user_tuning_cost = inputs.tuning_cost_usd * inputs.user_cost_share
    runs_available = inputs.runs_per_month * inputs.months_until_retuning
    if saving > 0:
        breakeven = user_tuning_cost / saving
        breakeven_months = (
            breakeven / inputs.runs_per_month if inputs.runs_per_month > 0
            else float("inf")
        )
    else:
        breakeven = float("inf")
        breakeven_months = float("inf")
    net = saving * runs_available - user_tuning_cost
    return AmortizationReport(
        saving_per_run_usd=saving,
        runs_before_retuning=runs_available,
        breakeven_runs=breakeven,
        breakeven_months=breakeven_months,
        amortizes=breakeven <= runs_available,
        net_saving_usd=net,
        user_tuning_cost_usd=user_tuning_cost,
    )
