"""Workload similarity: distances, k-medoids clustering, neighbour lookup.

AROMA (Lama & Zhou, ICAC'12) clusters executed jobs by their resource
signatures with k-medoids and reuses per-cluster tuning knowledge; the
paper's challenge V.B asks for exactly this machinery as the basis for
cross-workload transfer.  Implemented from scratch (PAM-style build +
swap phases).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .characterization import scaled
from .history import HistoryStore

__all__ = ["signature_distance", "KMedoids", "find_similar_workloads", "SimilarWorkload"]


def signature_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between scaled characterization vectors."""
    return float(np.linalg.norm(scaled(a) - scaled(b)))


class KMedoids:
    """Partitioning Around Medoids for small/medium datasets."""

    def __init__(self, k: int, max_iter: int = 50, seed: int = 0):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.max_iter = max_iter
        self.rng = np.random.default_rng(seed)
        self.medoid_indices_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None

    @staticmethod
    def _distance_matrix(X: np.ndarray) -> np.ndarray:
        diff = X[:, None, :] - X[None, :, :]
        return np.sqrt(np.sum(diff**2, axis=-1))

    def fit(self, X: np.ndarray) -> "KMedoids":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = len(X)
        if n < self.k:
            raise ValueError(f"need at least k={self.k} points, got {n}")
        D = self._distance_matrix(X)

        # BUILD: greedy medoid selection minimizing total distance.
        medoids = [int(np.argmin(D.sum(axis=1)))]
        while len(medoids) < self.k:
            current = np.min(D[:, medoids], axis=1)
            gains = np.maximum(0.0, current[None, :] - D).sum(axis=1)
            gains[medoids] = -np.inf
            medoids.append(int(np.argmax(gains)))

        # SWAP: hill-climb on total cost.
        def total_cost(meds):
            return float(np.min(D[:, meds], axis=1).sum())

        cost = total_cost(medoids)
        for _ in range(self.max_iter):
            improved = False
            for mi in range(self.k):
                for candidate in range(n):
                    if candidate in medoids:
                        continue
                    trial = list(medoids)
                    trial[mi] = candidate
                    c = total_cost(trial)
                    if c + 1e-12 < cost:
                        medoids, cost = trial, c
                        improved = True
            if not improved:
                break

        self.medoid_indices_ = np.array(sorted(medoids))
        self.labels_ = np.argmin(D[:, self.medoid_indices_], axis=1)
        return self

    def predict(self, X: np.ndarray, medoid_points: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest of ``medoid_points``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        d = np.linalg.norm(X[:, None, :] - medoid_points[None, :, :], axis=-1)
        return np.argmin(d, axis=1)


@dataclass(frozen=True)
class SimilarWorkload:
    """A neighbour in signature space, with provenance."""

    tenant: str
    workload_label: str
    distance: float
    signature: np.ndarray


def find_similar_workloads(store: HistoryStore, target_signature: np.ndarray,
                           k: int = 3, exclude: tuple[str, str] | None = None,
                           max_distance: float = np.inf) -> list[SimilarWorkload]:
    """Nearest workloads in the provider history by mean signature.

    ``max_distance`` implements the negative-transfer guard the paper
    warns about (citing Ge et al.): workloads beyond the radius are not
    considered similar at all.
    """
    neighbours = []
    for tenant, label in store.workload_keys():
        if exclude is not None and (tenant, label) == exclude:
            continue
        mean_sig = store.mean_signature(tenant, label)
        if mean_sig is None:
            continue
        d = signature_distance(target_signature, mean_sig)
        if d <= max_distance:
            neighbours.append(SimilarWorkload(tenant, label, d, mean_sig))
    neighbours.sort(key=lambda s: s.distance)
    return neighbours[:k]
