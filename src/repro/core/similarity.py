"""Workload similarity: distances, k-medoids clustering, neighbour lookup.

AROMA (Lama & Zhou, ICAC'12) clusters executed jobs by their resource
signatures with k-medoids and reuses per-cluster tuning knowledge; the
paper's challenge V.B asks for exactly this machinery as the basis for
cross-workload transfer.  Implemented from scratch (PAM-style build +
FastPAM-style vectorized swap).

Neighbour lookup is served by the incremental
:class:`~repro.core.simindex.SignatureIndex` — one (W, d) matrix op per
query instead of a full-log scan per workload key.  The pre-index scan
(:func:`find_similar_workloads_scan`) is kept as the reference
implementation: the identity suite asserts both return bit-identical
neighbours, and the ``similarity_lookup_1M`` bench measures the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .characterization import _FEATURE_SCALE, scaled
from .history import HistoryStore

__all__ = [
    "signature_distance",
    "KMedoids",
    "find_similar_workloads",
    "find_similar_workloads_scan",
    "SimilarWorkload",
]


def signature_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between scaled characterization vectors.

    Spelled as ``sqrt(sum(diff²))`` rather than ``np.linalg.norm`` so the
    scalar path and the index's row-wise ``sum(diff², axis=1)`` reduce
    with the same pairwise summation — bit-identical, not merely close
    (norm's BLAS dot can differ in the last ulp).
    """
    diff = scaled(a) - scaled(b)
    return float(np.sqrt(np.sum(diff * diff)))


class KMedoids:
    """Partitioning Around Medoids for small/medium datasets."""

    def __init__(self, k: int, max_iter: int = 50, seed: int = 0):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.max_iter = max_iter
        self.rng = np.random.default_rng(seed)
        self.medoid_indices_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None

    @staticmethod
    def _distance_matrix(X: np.ndarray) -> np.ndarray:
        diff = X[:, None, :] - X[None, :, :]
        return np.sqrt(np.sum(diff**2, axis=-1))

    def fit(self, X: np.ndarray) -> "KMedoids":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n = len(X)
        if n < self.k:
            raise ValueError(f"need at least k={self.k} points, got {n}")
        D = self._distance_matrix(X)

        # BUILD: greedy medoid selection minimizing total distance.
        medoids = [int(np.argmin(D.sum(axis=1)))]
        while len(medoids) < self.k:
            current = np.min(D[:, medoids], axis=1)
            gains = np.maximum(0.0, current[None, :] - D).sum(axis=1)
            gains[medoids] = -np.inf
            medoids.append(int(np.argmax(gains)))

        # SWAP, FastPAM-style: instead of re-scoring every (medoid,
        # candidate) pair with a fresh assignment pass (O(k²n²) per
        # sweep in Python), keep each point's nearest/second-nearest
        # medoid distances.  Removing medoid slot ``mi`` re-assigns its
        # points to their second choice (``base``); adding candidate
        # ``c`` caps every point at D[:, c] — so one broadcast minimum
        # scores all n candidates for a slot at once.  Best-improvement
        # descent: apply the single best swap per iteration.
        meds = np.array(medoids)
        point_idx = np.arange(n)
        for _ in range(self.max_iter):
            d_med = D[:, meds]
            if self.k == 1:
                nearest = np.zeros(n, dtype=np.intp)
                d1 = d_med[:, 0]
                d2 = np.full(n, np.inf)
            else:
                order = np.argpartition(d_med, 1, axis=1)
                nearest = order[:, 0]
                d1 = d_med[point_idx, nearest]
                d2 = d_med[point_idx, order[:, 1]]
            cost = float(d1.sum())
            totals = np.empty((self.k, n))
            for mi in range(self.k):
                base = np.where(nearest == mi, d2, d1)
                totals[mi] = np.minimum(base[:, None], D).sum(axis=0)
            totals[:, meds] = np.inf
            mi, candidate = np.unravel_index(np.argmin(totals), totals.shape)
            if totals[mi, candidate] + 1e-12 < cost:
                meds[mi] = candidate
            else:
                break

        self.medoid_indices_ = np.array(sorted(meds.tolist()))
        self.labels_ = np.argmin(D[:, self.medoid_indices_], axis=1)
        return self

    def predict(self, X: np.ndarray, medoid_points: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest of ``medoid_points``."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        d = np.linalg.norm(X[:, None, :] - medoid_points[None, :, :], axis=-1)
        return np.argmin(d, axis=1)


@dataclass(frozen=True)
class SimilarWorkload:
    """A neighbour in signature space, with provenance."""

    tenant: str
    workload_label: str
    distance: float
    signature: np.ndarray


def find_similar_workloads(store: HistoryStore, target_signature: np.ndarray,
                           k: int = 3, exclude: tuple[str, str] | None = None,
                           max_distance: float = np.inf) -> list[SimilarWorkload]:
    """Nearest workloads in the provider history by mean signature.

    ``max_distance`` implements the negative-transfer guard the paper
    warns about (citing Ge et al.): workloads beyond the radius are not
    considered similar at all.

    Served by the store's shared :class:`~repro.core.simindex.SignatureIndex`:
    one vectorized (W, d) distance computation over cached per-workload
    means, bit-identical to :func:`find_similar_workloads_scan`.
    """
    hits = store.index().find_similar(
        scaled(target_signature), _FEATURE_SCALE, k, exclude, max_distance,
    )
    return [
        SimilarWorkload(tenant, label, distance, mean_sig)
        for (tenant, label), distance, mean_sig in hits
    ]


def find_similar_workloads_scan(store: HistoryStore, target_signature: np.ndarray,
                                k: int = 3, exclude: tuple[str, str] | None = None,
                                max_distance: float = np.inf) -> list[SimilarWorkload]:
    """Pre-index reference path: one full-log scan *per workload key*.

    O(workloads × records) per query — the behaviour the index replaced.
    Kept verbatim so the identity suite can assert the indexed path
    returns bit-identical neighbours and the ``similarity_lookup_1M``
    bench can measure the speedup against it.
    """
    records = store.all()
    keys = sorted({r.key for r in records})
    neighbours = []
    for tenant, label in keys:
        if exclude is not None and (tenant, label) == exclude:
            continue
        runs = [r for r in records if r.key == (tenant, label) and r.success]
        if not runs:
            continue
        mean_sig = np.mean([r.signature for r in runs], axis=0)
        d = signature_distance(target_signature, mean_sig)
        if d <= max_distance:
            neighbours.append(SimilarWorkload(tenant, label, d, mean_sig))
    neighbours.sort(key=lambda s: s.distance)
    return neighbours[:k]
