"""Load generator for the multi-tenant service: many tenants, one stack.

Builds the full service stack — shared append-only history log, one
:class:`~repro.core.service.TuningService` per shard (own engine, own
ledger), admission control, SLO-priority scheduling, the asyncio front
end — and drives it with a synthetic tenant population:

1. every tenant submits a :class:`~repro.core.serviced.frontend.TuneRequest`
   (lightweight random-search sessions on a pinned cluster — the load
   profile measures the *service*, not the optimizer), retrying with
   backoff when admission rejects it;
2. each deployed tenant then ingests its recurring production runs as
   concurrent :class:`~repro.core.serviced.frontend.RunBatchRequest`
   batches through the batched simulator fast path.

Tenants are drawn from a handful of workload families, so many tenants
share a fingerprint: they land on the same shard and hit its warm
engine cache — the cross-tenant amortization the sharding exists for.

:func:`run_load` returns a :class:`LoadReport` with the two headline
SLIs (run throughput, p99 submit-to-deploy latency) plus the admission,
scheduler, shard and billing telemetry — this is what
``benchmarks/test_perf_service.py`` writes into ``BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from ...cloud.cluster import Cluster
from ...cloud.pricing import CostLedger
from ...tuning.random_search import RandomSearchTuner
from ...workloads import get_workload
from ...workloads.suite import SUITE
from ..history import HistoryStore
from ..histlog import HistoryLog
from ..service import TuningService
from ..slo import SLOMetric, TuningSLO
from .admission import REJECT_BUDGET, AdmissionController
from .frontend import RunBatchRequest, ServiceFrontEnd, TuneRequest
from .scheduler import SLOPriorityScheduler, TenantBudget
from .sharding import ShardPool

__all__ = ["LoadScenario", "LoadReport", "build_stack", "run_load"]


@dataclass(frozen=True)
class LoadScenario:
    """One load-test configuration; defaults are a small smoke profile."""

    n_tenants: int = 50
    #: distinct workload families tenants are drawn from (≤ suite size);
    #: fewer families → more fingerprint collisions → warmer shards
    n_workload_families: int = 4
    #: recurring production executions ingested per deployed tenant
    runs_per_tenant: int = 20
    #: concurrent RunBatchRequest batches those runs are split into
    ingest_batches: int = 2
    n_shards: int = 4
    input_mb: float = 1000.0
    cluster_instance: str = "m5.xlarge"
    cluster_count: int = 4
    #: per-session DISC evaluations (random search under load)
    disc_budget: int = 4
    batch_size: int = 4
    max_pending: int = 256
    per_tenant_inflight: int = 2
    #: per-tenant tuning spend cap in USD (``inf`` = uncapped)
    max_tuning_cost_usd: float = float("inf")
    slo_target_fraction: float = 0.25
    #: rejection retries per request; the ramping backoff (see
    #: ``_submit_with_retry``) makes the total retry window minutes, so
    #: a full-population burst drains through a bounded queue
    max_retries: int = 2000
    retry_backoff_s: float = 0.004
    seed: int = 0


@dataclass
class LoadReport:
    """Outcome + telemetry of one :func:`run_load` execution."""

    scenario: LoadScenario
    wall_s: float
    tenants_deployed: int
    tenants_denied: int              # tune never admitted (retries exhausted)
    runs_submitted: int
    #: headline SLI 1: production runs ingested per second of wall time
    runs_per_s: float
    #: headline SLI 2: submit-to-deploy latency of accepted tune requests
    tune_latency_p50_s: float
    tune_latency_p99_s: float
    rejections: dict = field(default_factory=dict)
    slo_attained: int = 0
    slo_missed: int = 0
    tuning_cost_usd: float = 0.0
    production_cost_usd: float = 0.0
    history_records: int = 0
    stats: dict = field(default_factory=dict)
    #: pool-wide per-phase wall-time split (suggest/evaluate/ingest/
    #: similarity), merged across every shard's service profiler
    per_phase: dict = field(default_factory=dict)

    def to_metrics(self) -> dict:
        """Flat numeric dict for ``BENCH_service.json``."""
        return {
            "wall_s": self.wall_s,
            "tenants": float(self.scenario.n_tenants),
            "tenants_deployed": float(self.tenants_deployed),
            "runs_submitted": float(self.runs_submitted),
            "runs_per_s": self.runs_per_s,
            "tune_latency_p50_s": self.tune_latency_p50_s,
            "tune_latency_p99_s": self.tune_latency_p99_s,
            "rejections_total": float(sum(self.rejections.values())),
            "slo_attained": float(self.slo_attained),
            "history_records": float(self.history_records),
        }


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile; 0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def build_stack(scenario: LoadScenario) -> tuple[ServiceFrontEnd, ShardPool,
                                                 HistoryStore, list[CostLedger]]:
    """Assemble log → sharded services → admission/scheduler → front end.

    Every shard's service shares the one append-only history log (so
    transfer and SLO references see all tenants) but owns its ledger —
    shard-serial execution is what makes per-tenant spend attribution
    exact (see :mod:`repro.core.serviced.frontend`).
    """
    log = HistoryLog()
    store = HistoryStore(log)
    ledgers = [CostLedger() for _ in range(scenario.n_shards)]

    def service_factory(shard: int) -> TuningService:
        return TuningService(
            store=HistoryStore(log), ledger=ledgers[shard],
            executor="serial", seed=scenario.seed + 1000 * (shard + 1),
        )

    pool = ShardPool(scenario.n_shards, service_factory)
    frontend = ServiceFrontEnd(
        pool,
        admission=AdmissionController(
            max_pending=scenario.max_pending,
            per_tenant_inflight=scenario.per_tenant_inflight,
        ),
        scheduler=SLOPriorityScheduler(),
    )
    return frontend, pool, store, ledgers


async def _submit_with_retry(frontend: ServiceFrontEnd, request,
                             scenario: LoadScenario):
    """Submit, backing off on rejection; budget rejections are final.

    The backoff ramps (capped at 32x) so a rejected burst thins out
    instead of hammering the admission gate in lockstep.
    """
    outcome = await frontend.submit(request)
    for attempt in range(scenario.max_retries):
        if outcome.accepted or outcome.reason == REJECT_BUDGET:
            return outcome
        await asyncio.sleep(scenario.retry_backoff_s * min(attempt + 1, 32))
        outcome = await frontend.submit(request)
    return outcome


async def _tenant(frontend: ServiceFrontEnd, scenario: LoadScenario,
                  index: int, workload, totals: dict) -> None:
    """One tenant's life: tune (with retries), then ingest its runs."""
    tenant = f"tenant-{index:04d}"
    cluster = Cluster.of(scenario.cluster_instance, scenario.cluster_count)
    tune = TuneRequest(
        tenant=tenant, workload=workload, input_mb=scenario.input_mb,
        slo=TuningSLO(SLOMetric.WITHIN_BEST_SIMILAR,
                      scenario.slo_target_fraction),
        cluster=cluster, disc_budget=scenario.disc_budget,
        use_transfer=False, batch_size=scenario.batch_size,
        tuner_factory=lambda service, seed: RandomSearchTuner(
            service.disc_space, seed=seed,
        ),
    )
    outcome = await _submit_with_retry(frontend, tune, scenario)
    if not outcome.accepted:
        totals["denied"] += 1
        totals["final_rejections"][outcome.reason] = (
            totals["final_rejections"].get(outcome.reason, 0) + 1
        )
        return
    totals["deployed"] += 1
    totals["tune_latencies"].append(outcome.latency_s)
    report = outcome.deployment.slo_report
    if report is not None:
        totals["slo_attained" if report.attained else "slo_missed"] += 1

    per_batch = max(1, scenario.runs_per_tenant // scenario.ingest_batches)
    batches, left = [], scenario.runs_per_tenant
    while left > 0:
        n = min(per_batch, left)
        batches.append(RunBatchRequest(
            tenant=tenant, deployment=outcome.deployment,
            input_mb=scenario.input_mb, n_runs=n,
        ))
        left -= n
    results = await asyncio.gather(*[
        _submit_with_retry(frontend, b, scenario) for b in batches
    ])
    for r in results:
        if r.accepted:
            totals["runs"] += r.runs_submitted
        else:
            totals["final_rejections"][r.reason] = (
                totals["final_rejections"].get(r.reason, 0) + 1
            )


async def _drive(frontend: ServiceFrontEnd, scenario: LoadScenario,
                 totals: dict) -> None:
    families = min(scenario.n_workload_families, len(SUITE))
    names = list(SUITE)[:families]
    workloads = [get_workload(name) for name in names]
    for tenant_index in range(scenario.n_tenants):
        budget = TenantBudget(
            tenant=f"tenant-{tenant_index:04d}",
            slo=TuningSLO(SLOMetric.WITHIN_BEST_SIMILAR,
                          scenario.slo_target_fraction),
            max_tuning_cost=scenario.max_tuning_cost_usd,
        )
        frontend.register_budget(budget)
    await asyncio.gather(*[
        _tenant(frontend, scenario, i, workloads[i % families], totals)
        for i in range(scenario.n_tenants)
    ])
    await frontend.close()


def run_load(scenario: LoadScenario = LoadScenario()) -> LoadReport:
    """Run one load scenario against a freshly built service stack."""
    frontend, pool, store, ledgers = build_stack(scenario)
    totals: dict = {
        "deployed": 0, "denied": 0, "runs": 0,
        "slo_attained": 0, "slo_missed": 0,
        "tune_latencies": [], "final_rejections": {},
    }
    t0 = time.monotonic()
    try:
        asyncio.run(_drive(frontend, scenario, totals))
    finally:
        pool.close()
    wall = time.monotonic() - t0
    rejections = dict(frontend.admission.stats()["n_rejected"])
    return LoadReport(
        scenario=scenario,
        wall_s=wall,
        tenants_deployed=totals["deployed"],
        tenants_denied=totals["denied"],
        runs_submitted=totals["runs"],
        runs_per_s=totals["runs"] / wall if wall > 0 else 0.0,
        tune_latency_p50_s=_percentile(totals["tune_latencies"], 0.50),
        tune_latency_p99_s=_percentile(totals["tune_latencies"], 0.99),
        rejections=rejections,
        slo_attained=totals["slo_attained"],
        slo_missed=totals["slo_missed"],
        tuning_cost_usd=sum(ledger.tuning_cost for ledger in ledgers),
        production_cost_usd=sum(ledger.production_cost for ledger in ledgers),
        history_records=len(store),
        stats=frontend.stats(),
        per_phase=pool.phase_totals(),
    )
