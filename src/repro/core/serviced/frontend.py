"""The asynchronous front door of the multi-tenant tuning service.

This is the paper's Fig. 1 "submit a workload, get a tuned deployment"
contract made concurrent: tenants submit requests to an
:class:`asyncio` front end; admission control answers immediately
(admitted, or rejected with a reason); admitted work queues in the
SLO-priority scheduler and is dispatched to the fingerprint-pinned
shard as soon as that shard is free.  Every accepted submission reports
its **submit-to-deploy latency** — the p99 of which is the service's
headline SLI in ``BENCH_service.json``.

Two request kinds cover the service lifecycle:

* :class:`TuneRequest` — run a tuning session and hand back a
  :class:`~repro.core.service.Deployment` (the cloud stage is skipped
  when the tenant pins a cluster, which recurring tenants do).
* :class:`RunBatchRequest` — ingest a batch of recurring production
  executions for an existing deployment: simulated through the
  candidate-batched fast path, charged to the ledger, appended to the
  shared history log.

Billing attribution: each shard owns its own
:class:`~repro.cloud.pricing.CostLedger` and executes jobs serially, so
the front end measures the exact ledger delta around every job and
charges it to the tenant's :class:`TenantBudget` — the spend that
admission control and the priority scheduler act on.  Provider-wide
totals are the sum over shard ledgers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ...cloud.cluster import Cluster
from ...cloud.interference import QUIET
from ..service import Deployment, TuningService
from ..slo import TuningSLO
from .admission import AdmissionController
from .scheduler import SLOPriorityScheduler, TenantBudget
from .sharding import ShardPool, workload_fingerprint

__all__ = [
    "TuneRequest",
    "RunBatchRequest",
    "SubmitOutcome",
    "ServiceFrontEnd",
    "ingest_production_runs",
]


@dataclass(frozen=True)
class TuneRequest:
    """Tune ``workload`` for ``tenant`` and deploy it."""

    tenant: str
    workload: object
    input_mb: float
    workload_label: str | None = None
    slo: TuningSLO | None = None
    cluster: Cluster | None = None       # pinned cluster skips the cloud stage
    cloud_budget: int = 12
    disc_budget: int = 25
    use_transfer: bool = True
    batch_size: int = 1
    #: optional lightweight optimizer factory ``(service, seed) -> Tuner``
    #: — the load profile swaps BO for random search here
    tuner_factory: Callable | None = None


@dataclass(frozen=True)
class RunBatchRequest:
    """Ingest ``n_runs`` recurring executions of a deployed workload."""

    tenant: str
    deployment: Deployment
    input_mb: float
    n_runs: int


@dataclass
class SubmitOutcome:
    """What one submission got: a deployment, runs ingested, or a reason."""

    tenant: str
    kind: str                            # "tune" | "runs"
    accepted: bool
    reason: str | None = None            # admission reason when rejected
    deployment: Deployment | None = None
    runs_submitted: int = 0
    shard: int | None = None
    #: submit-to-completion wall time (submit-to-deploy for tune requests)
    latency_s: float | None = None


@dataclass
class _Entry:
    """One admitted request queued for dispatch."""

    job: Callable[[TuningService], object]
    fingerprint: str
    future: asyncio.Future = field(repr=False)


def ingest_production_runs(service: TuningService, deployment: Deployment,
                           input_mb: float, n_runs: int,
                           seed: int | None = None) -> int:
    """Run ``n_runs`` recurring executions through the batched fast path.

    The steady-state ingest of the provider vision: every execution is
    simulated (one ``run_batch`` sweep), charged to the production
    ledger, and appended to the shared history log with its
    characterization signature.  Detector-driven re-tuning stays with
    :meth:`TuningService.run_production`; this path is for the firehose.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    from ..characterization import signature as characterize

    with service.profiler.phase("ingest"):
        base_seed = service._next_seed() if seed is None else seed
        envs = None
        if service.interference is not None:
            envs = [service.interference.step() for _ in range(n_runs)]
        results = service.simulator.run_batch(
            deployment.workload, input_mb, deployment.cluster,
            [deployment.config] * n_runs,
            envs=envs if envs is not None else [QUIET] * n_runs,
            seeds=[base_seed + i for i in range(n_runs)],
        )
        for result in results:
            service.ledger.charge_production(deployment.cluster, result.runtime_s)
            service.store.record(
                deployment.tenant, deployment.workload_label, input_mb,
                deployment.cluster.describe(), deployment.config, result,
                characterize(result),
            )
    return len(results)


class ServiceFrontEnd:
    """Async submit → admission → SLO-priority queue → sharded dispatch."""

    def __init__(self, pool: ShardPool,
                 admission: AdmissionController | None = None,
                 scheduler: SLOPriorityScheduler | None = None,
                 budgets: Mapping[str, TenantBudget] | None = None):
        self.pool = pool
        self.admission = admission or AdmissionController()
        self.scheduler = scheduler or SLOPriorityScheduler()
        self.budgets: dict[str, TenantBudget] = dict(budgets or {})
        self._busy: set[int] = set()
        self._wake: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._closed = False

    # --- tenant budgets ---------------------------------------------------
    def budget_of(self, tenant: str) -> TenantBudget | None:
        return self.budgets.get(tenant)

    def register_budget(self, budget: TenantBudget) -> None:
        self.budgets[budget.tenant] = budget

    # --- submission -------------------------------------------------------
    async def submit(self, request: TuneRequest | RunBatchRequest) -> SubmitOutcome:
        """Submit one request; resolves when it completes or is rejected.

        Rejections (queue full, tenant cap, budget exhausted) resolve
        immediately with ``accepted=False`` and the reason — the tenant
        can back off and retry.  Accepted requests hold their admission
        slot until completion, run on their fingerprint's shard, and
        have their exact ledger spend charged to the tenant budget.
        """
        if self._closed:
            raise RuntimeError("front end is closed")
        kind = "tune" if isinstance(request, TuneRequest) else "runs"
        budget = self.budgets.get(request.tenant)
        t_submit = time.monotonic()
        decision = self.admission.try_admit(
            request.tenant,
            budget_exhausted=budget.exhausted if budget is not None else False,
        )
        if not decision:
            return SubmitOutcome(
                tenant=request.tenant, kind=kind, accepted=False,
                reason=decision.reason,
            )
        entry = self._entry_for(request, budget)
        shard = self.pool.shard_of(entry.fingerprint)
        try:
            self.scheduler.push(entry, shard, budget)
            self._kick()
            result = await entry.future
        finally:
            self.admission.release(request.tenant)
        latency = time.monotonic() - t_submit
        if kind == "tune":
            deployment = result
            if budget is not None:
                budget.note_report(deployment.slo_report)
            return SubmitOutcome(
                tenant=request.tenant, kind=kind, accepted=True,
                deployment=deployment, shard=shard, latency_s=latency,
            )
        return SubmitOutcome(
            tenant=request.tenant, kind=kind, accepted=True,
            runs_submitted=int(result), shard=shard, latency_s=latency,
        )

    def _entry_for(self, request: TuneRequest | RunBatchRequest,
                   budget: TenantBudget | None) -> _Entry:
        loop = asyncio.get_running_loop()
        if isinstance(request, TuneRequest):
            fingerprint = workload_fingerprint(request.workload, request.input_mb)
            job = self._tune_job(request)
        else:
            fingerprint = workload_fingerprint(
                request.deployment.workload, request.input_mb,
            )
            job = self._runs_job(request)
        if budget is not None:
            job = _charging(job, budget)
        return _Entry(job=job, fingerprint=fingerprint,
                      future=loop.create_future())

    @staticmethod
    def _tune_job(request: TuneRequest) -> Callable[[TuningService], Deployment]:
        def job(service: TuningService) -> Deployment:
            disc_tuner = (
                request.tuner_factory(service, service._next_seed())
                if request.tuner_factory is not None else None
            )
            return service.submit(
                request.tenant, request.workload, request.input_mb,
                workload_label=request.workload_label, slo=request.slo,
                cloud_budget=request.cloud_budget,
                disc_budget=request.disc_budget,
                use_transfer=request.use_transfer,
                batch_size=request.batch_size,
                cluster=request.cluster, disc_tuner=disc_tuner,
            )
        return job

    @staticmethod
    def _runs_job(request: RunBatchRequest) -> Callable[[TuningService], int]:
        def job(service: TuningService) -> int:
            return ingest_production_runs(
                service, request.deployment, request.input_mb, request.n_runs,
            )
        return job

    # --- dispatch ---------------------------------------------------------
    def _kick(self) -> None:
        if self._wake is None:
            self._wake = asyncio.Event()
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        self._wake.set()

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while not self._closed:
            await self._wake.wait()
            self._wake.clear()
            while True:
                popped = self.scheduler.pop_ready(frozenset(self._busy))
                if popped is None:
                    break
                shard, entry = popped
                self._busy.add(shard)
                asyncio.get_running_loop().create_task(
                    self._run_entry(shard, entry)
                )

    async def _run_entry(self, shard: int, entry: _Entry) -> None:
        try:
            result = await asyncio.wrap_future(
                self.pool.submit(shard, entry.job, fingerprint=entry.fingerprint)
            )
        except Exception as exc:
            if not entry.future.done():
                entry.future.set_exception(exc)
        else:
            if not entry.future.done():
                entry.future.set_result(result)
        finally:
            self._busy.discard(shard)
            if self._wake is not None:
                self._wake.set()

    # --- lifecycle / telemetry -------------------------------------------
    async def close(self) -> None:
        """Stop the dispatcher (pending futures must be awaited first)."""
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._dispatcher is not None:
            await asyncio.gather(self._dispatcher, return_exceptions=True)

    def stats(self) -> dict:
        """Admission + scheduler + shard-pool telemetry in one snapshot."""
        return {
            "admission": self.admission.stats(),
            "scheduler": self.scheduler.stats(),
            "shards": self.pool.stats(),
        }


def _charging(job: Callable[[TuningService], object],
              budget: TenantBudget) -> Callable[[TuningService], object]:
    """Charge the job's exact ledger delta to the tenant budget.

    Shards execute jobs serially against their own ledger, so the delta
    observed around one job is exactly that job's spend.
    """
    def wrapped(service: TuningService) -> object:
        before = service.ledger.total_cost
        try:
            return job(service)
        finally:
            budget.charge(service.ledger.total_cost - before)
    return wrapped
