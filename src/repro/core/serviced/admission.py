"""Admission control for the multi-tenant service front end.

KEA (PAPERS.md) runs tuning as a shared Microsoft-internal service where
admission control and per-tenant caps are first-class concerns: a
provider cannot let one tenant's burst starve everyone else, and a
bounded request queue is what turns overload into fast, explainable
rejections instead of unbounded latency.

:class:`AdmissionController` enforces two limits at submit time, before
any work is queued:

* **Bounded pending queue** — at most ``max_pending`` requests admitted
  but not yet completed, service-wide.  Beyond that, new submissions are
  rejected with :data:`REJECT_QUEUE_FULL`.
* **Per-tenant in-flight cap** — at most ``per_tenant_inflight``
  concurrent requests per tenant, rejecting with
  :data:`REJECT_TENANT_CAP`.  This is the fairness knob: a tenant
  scripting thousands of submissions competes only with itself.

Callers may also pass ``budget_exhausted=True`` (computed from the
tenant's :class:`~repro.core.serviced.scheduler.TenantBudget`) to reject
with :data:`REJECT_BUDGET` — tuning stops when the tenant's agreed spend
is gone, which is the paper's bounded-user-cost principle enforced at
the front door.

Every decision is counted, so rejection rates are a first-class service
metric (they appear in the load report and ``BENCH_service.json``).
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

__all__ = [
    "REJECT_QUEUE_FULL",
    "REJECT_TENANT_CAP",
    "REJECT_BUDGET",
    "AdmissionDecision",
    "AdmissionController",
]

REJECT_QUEUE_FULL = "queue_full"
REJECT_TENANT_CAP = "tenant_inflight_cap"
REJECT_BUDGET = "budget_exhausted"


@dataclass(frozen=True)
class AdmissionDecision:
    """Admit, or reject with a machine-readable reason."""

    admitted: bool
    reason: str | None = None

    def __bool__(self) -> bool:
        return self.admitted


class AdmissionController:
    """Thread-safe admission gate with a bounded queue and tenant caps."""

    def __init__(self, max_pending: int = 256, per_tenant_inflight: int = 4):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if per_tenant_inflight < 1:
            raise ValueError("per_tenant_inflight must be >= 1")
        self.max_pending = max_pending
        self.per_tenant_inflight = per_tenant_inflight
        self._lock = threading.Lock()
        self._pending = 0
        self._by_tenant: Counter[str] = Counter()
        self.n_admitted = 0
        self.n_rejected: Counter[str] = Counter()

    def try_admit(self, tenant: str, *,
                  budget_exhausted: bool = False) -> AdmissionDecision:
        """Admit ``tenant``'s request or reject with a reason.

        An admitted request holds one pending slot and one tenant
        in-flight slot until :meth:`release` — the caller must pair
        every admit with exactly one release (success and failure
        paths alike).
        """
        with self._lock:
            if budget_exhausted:
                self.n_rejected[REJECT_BUDGET] += 1
                return AdmissionDecision(False, REJECT_BUDGET)
            if self._pending >= self.max_pending:
                self.n_rejected[REJECT_QUEUE_FULL] += 1
                return AdmissionDecision(False, REJECT_QUEUE_FULL)
            if self._by_tenant[tenant] >= self.per_tenant_inflight:
                self.n_rejected[REJECT_TENANT_CAP] += 1
                return AdmissionDecision(False, REJECT_TENANT_CAP)
            self._pending += 1
            self._by_tenant[tenant] += 1
            self.n_admitted += 1
            return AdmissionDecision(True)

    def release(self, tenant: str) -> None:
        """Return the slots held by one admitted request."""
        with self._lock:
            if self._pending <= 0 or self._by_tenant[tenant] <= 0:
                raise RuntimeError(
                    f"release() without a matching admit for {tenant!r}"
                )
            self._pending -= 1
            self._by_tenant[tenant] -= 1
            if not self._by_tenant[tenant]:
                del self._by_tenant[tenant]

    @property
    def pending(self) -> int:
        return self._pending

    def stats(self) -> dict:
        """Decision counters for the service report."""
        with self._lock:
            return {
                "pending": self._pending,
                "max_pending": self.max_pending,
                "per_tenant_inflight": self.per_tenant_inflight,
                "n_admitted": self.n_admitted,
                "n_rejected": dict(self.n_rejected),
            }
