"""Fingerprint-sharded worker pool for tuning sessions.

One evaluation engine's memoization cache only amortizes tuning cost
(paper principle 3) for candidates *it* has seen.  The service layer
therefore shards tuning sessions by **workload fingerprint**: tenants
running similar workloads land on the same shard, whose engine cache,
compiled-plan cache and warm models answer their repeated candidates —
while unrelated workloads spread across shards and run concurrently.

Fingerprints come in two strengths:

* Before any execution exists, :func:`workload_fingerprint` hashes the
  observable submission facts — workload name and the input-size decade
  — which is what a provider knows at submit time.
* Once the tenant has history, the caller can pass the workload's mean
  characterization *signature* (quantized, so near-identical workloads
  collide on purpose) for content-based placement that survives tenants
  naming the same workload differently.

The pool itself reuses the repo's dispatch idioms: each shard is one
worker thread draining a queue (the thread-per-shard analogue of
:class:`~repro.engine.executors.ParallelExecutor`'s chunk futures —
results travel back through :class:`concurrent.futures.Future`), and
each shard owns a full :class:`~repro.core.service.TuningService` whose
engine may itself fan evaluations out to a process pool with
shared-memory dispatch (``engine/shm.py``).  Shards share one
append-only history log and one cost ledger — both thread-safe — so
cross-tenant transfer and billing stay global while model warmth stays
shard-local.
"""

from __future__ import annotations

import hashlib
import queue
import threading
from collections import Counter
from concurrent.futures import Future
from typing import Callable

import numpy as np

from ..service import TuningService

__all__ = ["workload_fingerprint", "shard_index", "ShardPool"]


def workload_fingerprint(workload: object, input_mb: float,
                         signature: np.ndarray | None = None) -> str:
    """Stable hex fingerprint of a submission's workload identity.

    With a characterization ``signature`` (a returning tenant), the
    fingerprint is content-based: the signature is quantized to one
    decimal per feature so measurement noise and tiny variants still
    collide onto the same shard.  Without one (first contact), it falls
    back to the submission facts: workload name + input-size decade.
    """
    if signature is not None:
        sig = np.asarray(signature, dtype=float)
        payload = "sig:" + ",".join(f"{x:.1f}" for x in sig)
    else:
        name = getattr(workload, "name", type(workload).__name__)
        decade = int(np.floor(np.log10(max(1.0, float(input_mb)))))
        payload = f"sub:{name}:{decade}"
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def shard_index(fingerprint: str, n_shards: int) -> int:
    """Map a fingerprint onto one of ``n_shards`` shards."""
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    return int(fingerprint, 16) % n_shards


class _Shard(threading.Thread):
    """One worker thread owning one TuningService."""

    def __init__(self, index: int, service: TuningService):
        super().__init__(name=f"tuning-shard-{index}", daemon=True)
        self.index = index
        self.service = service
        self.jobs: queue.Queue = queue.Queue()
        self.n_jobs = 0

    def run(self) -> None:
        while True:
            item = self.jobs.get()
            if item is None:
                break
            job, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(job(self.service))
            except BaseException as exc:
                future.set_exception(exc)
            finally:
                self.n_jobs += 1


class ShardPool:
    """Fingerprint-addressed pool of tuning shards.

    ``service_factory(shard_index)`` builds each shard's
    :class:`~repro.core.service.TuningService`; give every factory call
    the same (thread-safe) ``store=``/``ledger=`` to share history and
    billing across shards while keeping engines — and their warm caches
    — shard-local.
    """

    def __init__(self, n_shards: int,
                 service_factory: Callable[[int], TuningService]):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self._shards = [_Shard(i, service_factory(i)) for i in range(n_shards)]
        self.jobs_by_fingerprint: Counter[str] = Counter()
        self._closed = False
        for shard in self._shards:
            shard.start()

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_of(self, fingerprint: str) -> int:
        return shard_index(fingerprint, len(self._shards))

    def service_of(self, shard: int) -> TuningService:
        return self._shards[shard].service

    def submit(self, shard: int, job: Callable[[TuningService], object],
               fingerprint: str | None = None) -> Future:
        """Queue ``job`` on ``shard``; the result arrives via the future."""
        if self._closed:
            raise RuntimeError("pool is closed")
        if fingerprint is not None:
            self.jobs_by_fingerprint[fingerprint] += 1
        future: Future = Future()
        self._shards[shard].jobs.put((job, future))
        return future

    def stats(self) -> dict:
        """Per-shard job counts plus each shard engine's amortization."""
        return {
            "n_shards": len(self._shards),
            "jobs_by_shard": [s.n_jobs for s in self._shards],
            "distinct_fingerprints": len(self.jobs_by_fingerprint),
            "engine_hits_by_shard": [
                s.service.engine.stats.hits for s in self._shards
            ],
            # Where each shard's wall time went: suggest vs evaluate vs
            # ingest vs similarity (see repro.core.profiling).
            "phases_by_shard": [
                s.service.profiler.snapshot() for s in self._shards
            ],
        }

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Pool-wide per-phase totals, merged across every shard."""
        from ..profiling import PhaseProfiler

        total = PhaseProfiler()
        for shard in self._shards:
            total.merge(shard.service.profiler)
        return total.snapshot()

    def close(self) -> None:
        """Stop every shard after its queue drains."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            shard.jobs.put(None)
        for shard in self._shards:
            shard.join()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
