"""Per-tenant SLO budgets and the priority scheduler they drive.

The paper proposes *tuning-effectiveness SLOs* ("jobs should run within
X% of the optimal runtime", Section IV.D); Tuneful-style operation makes
those SLOs per-tenant contracts with a spend budget attached.  The
service layer turns them into scheduling policy:

* :class:`TenantBudget` tracks, per tenant, the agreed
  :class:`~repro.core.slo.TuningSLO`, the tuning spend cap in USD, what
  has been spent so far (fed from the shared
  :class:`~repro.cloud.pricing.CostLedger` charges), and the tenant's
  SLO attainment history.
* :class:`SLOPriorityScheduler` is a thread-safe priority queue of
  queued sessions.  Priority (smaller = sooner) combines two signals:

  - **SLO deficit** — tenants whose recent deployments *missed* their
    SLO jump the queue: the provider owes them tuning effort.
  - **Budget headroom** — among equal deficits, tenants with more of
    their budget remaining go first; a tenant at the end of its budget
    gains little from one more session, and admission will soon cut it
    off anyway.

  Ties break by arrival order (FIFO), so the policy is deterministic
  and starvation-free for equal-priority tenants.

The scheduler is shard-aware: sessions are pinned to a shard by
workload fingerprint (see :mod:`repro.core.serviced.sharding`), and
:meth:`SLOPriorityScheduler.pop_ready` pops the best-priority item
whose shard is currently free, leaving pinned-but-blocked work queued.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any

from ..slo import SLOReport, TuningSLO

__all__ = ["TenantBudget", "SLOPriorityScheduler"]


@dataclass
class TenantBudget:
    """One tenant's tuning-efficiency contract and spend state."""

    tenant: str
    slo: TuningSLO | None = None
    #: tuning spend cap in USD; ``inf`` means uncapped
    max_tuning_cost: float = float("inf")
    spent_cost: float = 0.0
    slo_attained: int = 0
    slo_missed: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False,
    )

    def charge(self, cost: float) -> None:
        """Attribute ``cost`` USD of tuning spend to this tenant."""
        with self._lock:
            self.spent_cost += cost

    def note_report(self, report: SLOReport | None) -> None:
        """Fold one deployment's SLO outcome into the attainment history."""
        if report is None:
            return
        with self._lock:
            if report.attained:
                self.slo_attained += 1
            else:
                self.slo_missed += 1

    @property
    def exhausted(self) -> bool:
        return self.spent_cost >= self.max_tuning_cost

    @property
    def remaining_fraction(self) -> float:
        """Budget headroom in [0, 1]; uncapped tenants report 1."""
        if self.max_tuning_cost == float("inf"):
            return 1.0
        if self.max_tuning_cost <= 0:
            return 0.0
        return max(0.0, 1.0 - self.spent_cost / self.max_tuning_cost)

    @property
    def attainment(self) -> float:
        """Fraction of SLO-scored deployments that attained; 1 when unscored."""
        scored = self.slo_attained + self.slo_missed
        if not scored:
            return 1.0
        return self.slo_attained / scored


def _priority(budget: TenantBudget | None) -> float:
    """Smaller runs sooner.  Deficit dominates, headroom tie-breaks."""
    if budget is None:
        return 0.0
    deficit = 1.0 - budget.attainment        # in [0, 1]
    headroom = budget.remaining_fraction     # in [0, 1]
    return -(2.0 * deficit + headroom)


class SLOPriorityScheduler:
    """Thread-safe, shard-aware priority queue of pending sessions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = itertools.count()
        self.n_pushed = 0
        self.n_popped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def push(self, item: Any, shard: int,
             budget: TenantBudget | None = None) -> None:
        """Queue ``item`` for ``shard`` at the tenant's current priority."""
        entry = (_priority(budget), next(self._seq), shard, item)
        with self._lock:
            heapq.heappush(self._heap, entry)
            self.n_pushed += 1

    def pop_ready(self, busy_shards: set[int] | frozenset[int] = frozenset(),
                  ) -> tuple[int, Any] | None:
        """Best-priority ``(shard, item)`` whose shard is not busy.

        Items pinned to busy shards stay queued at their priority; if
        every queued item is blocked (or the queue is empty), returns
        ``None``.
        """
        with self._lock:
            blocked: list[tuple[float, int, int, Any]] = []
            found: tuple[int, Any] | None = None
            while self._heap:
                entry = heapq.heappop(self._heap)
                if entry[2] in busy_shards:
                    blocked.append(entry)
                    continue
                found = (entry[2], entry[3])
                self.n_popped += 1
                break
            for entry in blocked:
                heapq.heappush(self._heap, entry)
            return found

    def stats(self) -> dict:
        with self._lock:
            return {
                "queued": len(self._heap),
                "n_pushed": self.n_pushed,
                "n_popped": self.n_popped,
            }
