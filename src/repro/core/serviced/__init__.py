"""Multi-tenant tuning service: async front end over sharded sessions.

The :mod:`repro.core` service made operational (paper Section IV read as
a provider service, KEA-style): admission control at the front door,
per-tenant SLO budgets driving a priority scheduler, tuning sessions
sharded by workload fingerprint so similar tenants share warm models,
all appending to one lock-free history log.

Modules:

* :mod:`~repro.core.serviced.admission` — bounded queue + per-tenant caps
* :mod:`~repro.core.serviced.scheduler` — SLO budgets, priority queue
* :mod:`~repro.core.serviced.sharding` — fingerprints + shard pool
* :mod:`~repro.core.serviced.frontend` — asyncio submit/dispatch loop
* :mod:`~repro.core.serviced.loadgen` — many-tenant load scenarios
"""

from .admission import (
    REJECT_BUDGET,
    REJECT_QUEUE_FULL,
    REJECT_TENANT_CAP,
    AdmissionController,
    AdmissionDecision,
)
from .frontend import (
    RunBatchRequest,
    ServiceFrontEnd,
    SubmitOutcome,
    TuneRequest,
    ingest_production_runs,
)
from .loadgen import LoadReport, LoadScenario, build_stack, run_load
from .scheduler import SLOPriorityScheduler, TenantBudget
from .sharding import ShardPool, shard_index, workload_fingerprint

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "REJECT_BUDGET",
    "REJECT_QUEUE_FULL",
    "REJECT_TENANT_CAP",
    "TenantBudget",
    "SLOPriorityScheduler",
    "ShardPool",
    "shard_index",
    "workload_fingerprint",
    "TuneRequest",
    "RunBatchRequest",
    "SubmitOutcome",
    "ServiceFrontEnd",
    "ingest_production_runs",
    "LoadScenario",
    "LoadReport",
    "build_stack",
    "run_load",
]
