"""A single tuning campaign: probe, tune, record — with stopping rules.

Wraps a tuner + simulation objective so every exploratory execution is
recorded into the provider history store and charged to a cost ledger.
Stopping combines a hard budget with CherryPick's EI rule and an
optional SLO-attained early exit — bounding tuning cost is principle 3
of the paper's vision.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..cloud.cluster import Cluster
from ..cloud.pricing import CostLedger
from ..config.space import Configuration
from ..sparksim.metrics import ExecutionResult
from ..tuning.base import (
    SimulationObjective,
    Tuner,
    TuningResult,
    _call_succeeded,
)
from ..tuning.bo.bayesopt import BayesOptTuner
from .characterization import probe_configuration, signature
from .history import HistoryStore
from .profiling import PhaseProfiler

__all__ = ["SessionConfig", "TuningSession"]


@dataclass(frozen=True)
class SessionConfig:
    """Knobs of a tuning campaign."""

    budget: int = 25
    ei_stop_fraction: float | None = 0.02   # CherryPick stop rule; None = off
    min_evaluations: int = 10
    target_runtime_s: float | None = None   # SLO early exit


@dataclass
class TuningSession:
    """Drives one tuner against one workload on one cluster."""

    tenant: str
    workload_label: str
    workload: object                        # repro.workloads.Workload
    input_mb: float
    cluster: Cluster
    tuner: Tuner
    objective: SimulationObjective
    store: HistoryStore | None = None
    ledger: CostLedger | None = None
    #: optional per-phase wall-time accumulator (the owning service's)
    profiler: PhaseProfiler | None = None
    result: TuningResult = field(default_factory=TuningResult)

    def _phase(self, name: str):
        if self.profiler is None:
            return nullcontext()
        return self.profiler.phase(name)

    def _record(self, config: Configuration, exec_result: ExecutionResult) -> None:
        if self.store is None:
            return
        self.store.record(
            tenant=self.tenant,
            workload_label=self.workload_label,
            input_mb=self.input_mb,
            cluster=self.cluster.describe(),
            config=config,
            result=exec_result,
            signature=signature(exec_result),
        )

    def probe(self, observe: bool = True) -> tuple[np.ndarray, float]:
        """One canonical-config profiling run; returns (signature, runtime).

        With ``observe`` (default), the probe measurement also feeds the
        tuner and the campaign history: it is a paid execution, and the
        deployed configuration should never be worse than it.
        """
        probe = probe_configuration()
        with self._phase("evaluate"):
            cost = self.objective(probe)
        exec_result = self.objective.last_result
        # Record — and observe — the probe as it actually launched
        # (resolved and, if the objective repairs, repaired): a history
        # entry for a configuration that never ran poisons transfer
        # warm-starts replaying it.
        _, probe_as_run = self.objective.resolve(probe)
        self._record(probe_as_run, exec_result)
        if observe:
            projected = Configuration({
                name: probe_as_run[name] for name in self.tuner.space.names
            })
            obs = self.tuner.observe(
                projected, cost, succeeded=_call_succeeded(self.objective)
            )
            self.result.history.append(obs)
        return signature(exec_result), cost

    def _evaluate_batch(self, configs) -> list[tuple[float, bool, ExecutionResult]]:
        """Evaluate ``configs``, batched through the engine when available."""
        evaluate_batch = getattr(self.objective, "evaluate_batch", None)
        if evaluate_batch is None or len(configs) == 1:
            out = []
            for config in configs:
                cost = self.objective(config)
                out.append((
                    cost, _call_succeeded(self.objective),
                    self.objective.last_result,
                ))
            return out
        outcomes = evaluate_batch(configs)
        records = getattr(self.objective, "last_records", None) or []
        results = [record.result for record in records]
        if len(results) != len(outcomes):   # non-engine batch protocol
            results = [self.objective.last_result] * len(outcomes)
        return [
            (cost, succeeded, result)
            for (cost, succeeded), result in zip(outcomes, results)
        ]

    def run(self, session_config: SessionConfig = SessionConfig(),
            batch_size: int = 1) -> TuningResult:
        """Tune until the budget, the EI rule, or the SLO target stops us.

        With ``batch_size > 1``, suggestions are drawn through the
        tuner's ``suggest_batch`` and evaluated together (memoized and,
        with a parallel engine, concurrently); stopping rules are
        checked at batch boundaries.
        """
        cfg = session_config
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        evals = 0
        while evals < cfg.budget:
            k = min(batch_size, cfg.budget - evals)
            with self._phase("suggest"):
                suggestions = (
                    self.tuner.suggest_batch(k) if k > 1
                    else [self.tuner.suggest()]
                )
            suggestions = suggestions[: cfg.budget - evals]
            with self._phase("evaluate"):
                outcomes = self._evaluate_batch(suggestions)
            for suggestion, (cost, succeeded, exec_result) in zip(
                suggestions, outcomes
            ):
                obs = self.tuner.observe(suggestion, cost, succeeded=succeeded)
                self.result.history.append(obs)
                self._record(suggestion, exec_result)
                if self.ledger is not None and self.objective.ledger is None:
                    self.ledger.charge_tuning(self.cluster, exec_result.runtime_s)
                evals += 1
            if evals < cfg.min_evaluations:
                continue
            if cfg.target_runtime_s is not None and self.result.best_cost <= cfg.target_runtime_s:
                break
            if (
                cfg.ei_stop_fraction is not None
                and isinstance(self.tuner, BayesOptTuner)
                and self.tuner.should_stop(cfg.ei_stop_fraction)
            ):
                break
        return self.result
