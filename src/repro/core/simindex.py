"""Vectorized signature index over the append-only history log.

The provider-scale problem: every transfer lookup used to re-scan the
entire history log *per workload key* — ``HistoryStore.mean_signature``
was O(total records), and :func:`~repro.core.similarity.find_similar_workloads`
called it once per known workload, making one top-k neighbour query
O(workloads × records).  At KEA-like scale (millions of records) that is
seconds per lookup on a path the service hits for every tuning session.

:class:`SignatureIndex` replaces the scans with per-(tenant, label)
running aggregates maintained **incrementally** against
:class:`~repro.core.histlog.HistoryLog` versions:

* a per-key buffer of successful-run signatures (capacity-doubled), from
  which the cached mean is recomputed — with the exact ``np.mean`` the
  scan path used, so indexed answers are *bit-identical* to naive ones;
* per-key success counts, best successful record, and best runtime,
  plus the global best — serving ``best_for``/``best_runtime_overall``
  in O(1)/O(workloads);
* a key-sorted mean matrix answering top-k similarity with one (W, d)
  distance computation and ``np.argpartition`` instead of a Python loop
  over full-log scans.

Synchronization is lazy: a query compares the log's version counter and
folds in only the records appended since the last sync (``log.tail``),
so steady-state maintenance is O(new records).  Append order is stable
across segment sealing and snapshot compaction (both merge in order), so
the incremental suffix stays valid across compaction — the identity
suite forces compactions mid-stream to pin that property; ``rebuild()``
remains as the escape hatch (and runs automatically if the log ever
shrinks, which no current code path does).

One index is shared per log — every :class:`~repro.core.history.HistoryStore`
view over the same log (e.g. the per-shard stores of the multi-tenant
service) resolves to the same instance via :func:`signature_index`, so
the memory and sync cost are paid once per provider log, not per shard.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass

import numpy as np

from .histlog import ExecutionRecord, HistoryLog

__all__ = ["SignatureIndex", "signature_index"]


@dataclass
class _KeyAggregate:
    """Running aggregates of one (tenant, label)'s successful runs."""

    row: int
    sigs: np.ndarray                      # (capacity, d) signature buffer
    n_success: int = 0
    best: ExecutionRecord | None = None

    def append(self, signature: np.ndarray) -> None:
        n = self.n_success
        if n >= len(self.sigs):
            grown = np.empty((max(8, 2 * len(self.sigs)), self.sigs.shape[1]))
            grown[:n] = self.sigs[:n]
            self.sigs = grown
        self.sigs[n] = signature
        self.n_success = n + 1


class SignatureIndex:
    """Incremental per-workload signature aggregates over one log."""

    def __init__(self, log: HistoryLog):
        self._log = log
        self._lock = threading.RLock()
        self._reset_locked()

    def _reset_locked(self) -> None:
        self._keys: dict[tuple[str, str], _KeyAggregate] = {}
        self._dim: int | None = None
        self._synced_count = 0
        self._synced_version = -1
        # Row-major caches, one row per key in first-seen order.
        self._means = np.zeros((0, 0))
        self._counts = np.zeros(0, dtype=np.int64)
        self._best_runtimes = np.full(0, np.inf)
        self._dirty: set[int] = set()
        self._by_row: list[_KeyAggregate] = []
        self._best_overall: ExecutionRecord | None = None
        # Key-sort caches (satellite: workload_keys without re-sorting the
        # snapshot per call) — invalidated only when a *new* key appears.
        self._sorted_keys: list[tuple[str, str]] | None = None
        self._sorted_rows: np.ndarray | None = None
        # --- telemetry ----------------------------------------------------
        self.n_syncs = 0
        self.n_records_indexed = 0
        self.n_rebuilds = 0
        self.n_mean_refreshes = 0
        self.n_lookups = 0

    # --- maintenance ------------------------------------------------------
    def rebuild(self) -> None:
        """Drop all aggregates and re-index the whole log."""
        with self._lock:
            self._reset_locked()
            self.n_rebuilds += 1
            self._sync_locked()

    def sync(self) -> None:
        """Fold in records appended since the last sync (cheap when none)."""
        version = self._log.version
        if version == self._synced_version:
            return
        with self._lock:
            self._sync_locked()

    def _sync_locked(self) -> None:
        version = self._log.version
        if version == self._synced_version:
            return
        if len(self._log) < self._synced_count:
            # The log shrank under us — impossible for the append-only
            # log, but a foreign/replaced log gets correctness over speed.
            self._reset_locked()
            self.n_rebuilds += 1
        new = self._log.tail(self._synced_count)
        for record in new:
            self._ingest_locked(record)
        self._synced_count += len(new)
        self._synced_version = version
        self.n_syncs += 1
        self.n_records_indexed += len(new)

    def _ingest_locked(self, record: ExecutionRecord) -> None:
        key = record.key
        agg = self._keys.get(key)
        if agg is None:
            agg = self._add_key_locked(key, record)
        if not record.success:
            return
        sig = np.asarray(record.signature, dtype=float)
        if self._dim is None:
            self._dim = sig.shape[0]
            self._means = np.zeros((len(self._means), self._dim))
        elif sig.shape != (self._dim,):
            raise ValueError(
                f"signature dimension {sig.shape} does not match the "
                f"log's established ({self._dim},)"
            )
        agg.append(sig)
        row = agg.row
        self._counts[row] += 1
        self._dirty.add(row)
        # min() keeps the first of equal runtimes, so only strictly
        # better records displace the per-key/global incumbents.
        if agg.best is None or record.runtime_s < agg.best.runtime_s:
            agg.best = record
            self._best_runtimes[row] = record.runtime_s
        if self._best_overall is None or \
                record.runtime_s < self._best_overall.runtime_s:
            self._best_overall = record

    def _add_key_locked(self, key: tuple[str, str],
                        record: ExecutionRecord) -> _KeyAggregate:
        row = len(self._by_row)
        if row >= len(self._counts):
            cap = max(64, 2 * len(self._counts))
            dim = self._dim if self._dim is not None else 0
            means = np.zeros((cap, dim))
            counts = np.zeros(cap, dtype=np.int64)
            best = np.full(cap, np.inf)
            means[:row] = self._means[:row]
            counts[:row] = self._counts[:row]
            best[:row] = self._best_runtimes[:row]
            self._means, self._counts, self._best_runtimes = means, counts, best
        dim = self._dim if self._dim is not None \
            else np.asarray(record.signature).shape[0]
        agg = _KeyAggregate(row=row, sigs=np.empty((4, dim)))
        self._keys[key] = agg
        self._by_row.append(agg)
        self._sorted_keys = None
        self._sorted_rows = None
        return agg

    def _refresh_means_locked(self) -> None:
        for row in self._dirty:
            agg = self._by_row[row]
            # The exact np.mean over the stacked block the scan path
            # computes — bit-identical, not merely close.
            self._means[row] = np.mean(agg.sigs[:agg.n_success], axis=0)
            self.n_mean_refreshes += 1
        self._dirty.clear()

    def _sorted_order_locked(self) -> tuple[list[tuple[str, str]], np.ndarray]:
        if self._sorted_keys is None:
            self._sorted_keys = sorted(self._keys)
            self._sorted_rows = np.array(
                [self._keys[k].row for k in self._sorted_keys], dtype=np.intp,
            )
        return self._sorted_keys, self._sorted_rows

    # --- queries ----------------------------------------------------------
    def workload_keys(self) -> list[tuple[str, str]]:
        """Every (tenant, label) ever recorded, sorted."""
        self.sync()
        with self._lock:
            keys, _ = self._sorted_order_locked()
            return list(keys)

    def mean_signature(self, tenant: str, workload_label: str) -> np.ndarray | None:
        self.sync()
        with self._lock:
            agg = self._keys.get((tenant, workload_label))
            if agg is None or agg.n_success == 0:
                return None
            if agg.row in self._dirty:
                self._means[agg.row] = np.mean(
                    agg.sigs[:agg.n_success], axis=0,
                )
                self._dirty.discard(agg.row)
                self.n_mean_refreshes += 1
            return self._means[agg.row].copy()

    def best_for(self, tenant: str, workload_label: str) -> ExecutionRecord | None:
        self.sync()
        with self._lock:
            agg = self._keys.get((tenant, workload_label))
            return agg.best if agg is not None else None

    def best_runtime_overall(self) -> float | None:
        self.sync()
        with self._lock:
            if self._best_overall is None:
                return None
            return self._best_overall.runtime_s

    def best_runtime_excluding(self, exclude: tuple[str, str]) -> float | None:
        """Best successful runtime over every key except ``exclude``.

        The WITHIN_BEST_SIMILAR SLO reference — previously a full-log
        scan per deployment, now a masked min over per-key minima.
        """
        self.sync()
        with self._lock:
            excluded = self._keys.get(exclude)
            if excluded is None:
                return self.best_runtime_overall()
            n = len(self._by_row)
            runtimes = self._best_runtimes[:n].copy()
            runtimes[excluded.row] = np.inf
            best = float(runtimes.min()) if n else np.inf
            return None if not np.isfinite(best) else best

    def find_similar(self, target_scaled: np.ndarray, scale: np.ndarray,
                     k: int, exclude: tuple[str, str] | None,
                     max_distance: float) -> list[tuple[tuple[str, str], float, np.ndarray]]:
        """Top-k nearest keys to a pre-scaled target signature.

        Returns ``[(key, distance, mean_signature), ...]`` ordered
        exactly as the pre-index scan path ordered them: ascending
        distance, ties broken by key sort order (the scan iterated keys
        sorted and Python's sort is stable).  Selection is O(W) via
        ``argpartition``; only the k winners are sorted.
        """
        self.sync()
        with self._lock:
            self.n_lookups += 1
            self._refresh_means_locked()
            keys, rows = self._sorted_order_locked()
            if not keys or self._dim is None:
                return []
            means = self._means[rows]                      # (W, d), key-sorted
            counts = self._counts[rows]
            diff = means / scale - target_scaled           # rows scale like scaled()
            distances = np.sqrt(np.sum(diff * diff, axis=1))
            valid = counts > 0
            if exclude is not None and exclude in self._keys:
                # rows are key-sorted; locate exclude by bisection-free map
                valid = valid.copy()
                valid[keys.index(exclude)] = False
            valid &= distances <= max_distance
            candidate_idx = np.flatnonzero(valid)
            if len(candidate_idx) == 0 or k <= 0:
                return []
            d_valid = distances[candidate_idx]
            if len(candidate_idx) > k:
                # Exact top-k with scan-identical tie handling: take all
                # strictly inside the kth distance, then fill remaining
                # slots with boundary ties in ascending key order
                # (candidate_idx is already key-sorted).
                kth = np.partition(d_valid, k - 1)[k - 1]  # staticcheck: ignore[RA006] -- snapshot-consistent top-k needs the shard lock
                inner = candidate_idx[d_valid < kth]
                boundary = candidate_idx[d_valid == kth]
                take = boundary[: k - len(inner)]
                chosen = np.concatenate([inner, take])  # staticcheck: ignore[RA006] -- snapshot-consistent top-k needs the shard lock
            else:
                chosen = candidate_idx
            order = np.argsort(distances[chosen], kind="stable")  # staticcheck: ignore[RA006] -- snapshot-consistent top-k needs the shard lock
            out = []
            for i in chosen[order]:  # staticcheck: ignore[RA004] -- k-bounded result materialization, not the hot (W, d) op
                out.append((keys[i], float(distances[i]), means[i].copy()))
            return out

    # --- telemetry --------------------------------------------------------
    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "workload_keys": len(self._keys),
                "records_indexed": self.n_records_indexed,
                "syncs": self.n_syncs,
                "rebuilds": self.n_rebuilds,
                "mean_refreshes": self.n_mean_refreshes,
                "lookups": self.n_lookups,
            }


#: one index per log, shared by every HistoryStore view over that log
_INDEXES: "weakref.WeakKeyDictionary[HistoryLog, SignatureIndex]" = \
    weakref.WeakKeyDictionary()
_INDEXES_LOCK = threading.Lock()


def signature_index(log: HistoryLog) -> SignatureIndex:
    """The shared :class:`SignatureIndex` of ``log`` (created on first use)."""
    index = _INDEXES.get(log)
    if index is not None:
        return index
    with _INDEXES_LOCK:
        index = _INDEXES.get(log)
        if index is None:
            index = SignatureIndex(log)
            _INDEXES[log] = index
        return index
