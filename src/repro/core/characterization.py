"""Workload characterization from observable execution metrics.

Challenge V.B of the paper: "the accurate characterization of analytic
workloads is crucial in being able to detect similarities between them
... to avoid any negative transfer".  The signature here is derived
purely from Spark-style metrics (resource-time split, shuffle intensity,
DAG shape, task skew) — never from workload identity — so similarity
genuinely depends on characterization quality, as it would for a cloud
provider.

Signatures are most comparable when produced under the same *probe*
configuration (the service runs each newly submitted workload once under
a canonical probe config, mirroring AROMA's standardized profiling run).
"""

from __future__ import annotations

import numpy as np

from ..config.space import Configuration
from ..config.spark_params import SPARK_DEFAULTS
from ..sparksim.metrics import ExecutionResult

__all__ = ["signature", "FEATURE_NAMES", "probe_configuration"]

FEATURE_NAMES = [
    "log_input_mb",
    "shuffle_ratio",       # shuffle bytes per input byte
    "cpu_fraction",
    "io_fraction",
    "net_fraction",
    "gc_fraction",
    "cache_fraction",      # cached reads vs all reads
    "log_num_stages",
    "log_tasks_per_stage",
    "task_skew",           # p95 / median task duration
    "output_ratio",        # bytes written out per input byte
]


def probe_configuration() -> Configuration:
    """The canonical probe config used for first-contact profiling runs.

    Moderate resources that virtually always fit (AROMA profiles every
    job once under a standard allocation before clustering it).
    """
    probe = dict(SPARK_DEFAULTS)
    probe.update({
        "spark.executor.instances": 8,
        "spark.executor.cores": 4,
        "spark.executor.memory": 8192,
        "spark.default.parallelism": 128,
        "spark.serializer": "kryo",
    })
    return Configuration(probe)


def signature(result: ExecutionResult) -> np.ndarray:
    """Characterization vector of one execution (see ``FEATURE_NAMES``)."""
    stages = [s for s in result.stages if not s.failed]
    input_mb = max(1.0, result.total_input_mb)
    task_seconds = sum(
        s.cpu_time_s + s.io_time_s + s.net_time_s + s.gc_time_s for s in stages
    )
    task_seconds = max(task_seconds, 1e-9)
    cpu = sum(s.cpu_time_s for s in stages) / task_seconds
    io = sum(s.io_time_s for s in stages) / task_seconds
    net = sum(s.net_time_s for s in stages) / task_seconds
    gc = sum(s.gc_time_s for s in stages) / task_seconds

    reads = sum(s.input_mb + s.cached_read_mb + s.shuffle_read_mb for s in stages)
    cached = sum(s.cached_read_mb for s in stages)
    cache_fraction = cached / reads if reads > 0 else 0.0

    shuffle_ratio = min(5.0, result.total_shuffle_mb / input_mb)
    output_mb = sum(s.output_mb if s.writes_output else 0.0 for s in stages)
    output_ratio = min(3.0, output_mb / input_mb)

    n_stages = max(1, len(stages))
    tasks_per_stage = max(1.0, result.num_tasks / n_stages)

    skews = [
        s.task_metrics.p95_s / s.task_metrics.p50_s
        for s in stages
        if s.task_metrics is not None and s.task_metrics.p50_s > 0
    ]
    task_skew = float(np.mean(skews)) if skews else 1.0

    return np.array([
        np.log10(input_mb),
        shuffle_ratio,
        cpu,
        io,
        net,
        gc,
        cache_fraction,
        np.log10(n_stages),
        np.log10(tasks_per_stage),
        min(task_skew, 5.0),
        output_ratio,
    ])


#: per-feature scale used to put distances on comparable footing
_FEATURE_SCALE = np.array([
    2.0,    # log_input_mb spans ~2 decades
    1.0,    # shuffle_ratio
    0.5, 0.5, 0.5, 0.25,   # resource fractions
    0.5,    # cache_fraction
    1.0,    # log_num_stages
    1.0,    # log_tasks_per_stage
    1.0,    # task_skew
    1.0,    # output_ratio
])


def scaled(sig: np.ndarray) -> np.ndarray:
    """Scale a signature for distance computations."""
    sig = np.asarray(sig, dtype=float)
    if sig.shape != (_FEATURE_SCALE.shape[0],):
        raise ValueError(
            f"signature must have {len(_FEATURE_SCALE)} features, got {sig.shape}"
        )
    return sig / _FEATURE_SCALE
