"""Append-only history log: the concurrent heart of the provider store.

The paper's vision makes the execution history a *shared, provider-side*
artifact — "the cloud is a centralized place that keeps a record of the
workloads' execution history across users" — which means the store must
survive many tenants appending and querying at once.  A mutable list
behind a lock would serialize every reader against every writer; this
module instead structures the history the way log-structured systems do:

* **Append-only segments.**  Writers only ever append to a small
  *active* segment under a short lock.  When the active segment reaches
  ``segment_records`` entries it is *sealed* into an immutable tuple and
  a fresh active segment starts.  Sealed segments are never mutated.
* **Periodic snapshot compaction.**  Once ``compact_after`` sealed
  segments accumulate, they are merged into a single flat tuple (the
  *compacted base*).  Compaction never blocks readers: it builds the
  merged tuple and swaps it in atomically; any snapshot taken before
  the swap keeps referencing the old (still-immutable) segments.
* **Lock-free concurrent readers.**  :meth:`snapshot` returns one
  immutable tuple of every record in append order.  The tuple is cached
  per log version and re-read without taking the writer lock: readers
  observe a *consistent prefix* of the log — never a torn state —
  because all published containers are immutable and the version/cache
  swap is a single attribute store (atomic under the CPython memory
  model).  Writers pay the concatenation cost at most once per version.

Record identity (``record_id``) and the provider's logical clock
(``timestamp``) are allocated inside the writer lock, so concurrent
appends can never collide — the property the multi-tenant service layer
(:mod:`repro.core.serviced`) depends on.

:class:`~repro.core.history.HistoryStore` keeps its familiar query API
as a thin *view* over one of these logs; everything downstream
(similarity, transfer, SLO references, persistence) is unchanged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from ..config.space import Configuration

__all__ = ["ExecutionRecord", "HistoryLog", "readonly_signature"]


@dataclass(frozen=True)
class ExecutionRecord:
    """One workload execution as the provider sees it.

    Records are immutable log entries: once appended they are shared
    freely with concurrent readers, so every field must stay frozen —
    including the signature array, which the log stores as a read-only
    copy (see :func:`readonly_signature`).
    """

    record_id: int
    tenant: str
    workload_label: str          # tenant-scoped opaque label
    input_mb: float
    cluster: str                 # e.g. "4x h1.4xlarge (aws)"
    config: Configuration
    runtime_s: float
    success: bool
    signature: np.ndarray        # workload characterization vector
    #: logical timestamp (provider-side event counter)
    timestamp: int = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.tenant, self.workload_label)


def readonly_signature(signature: np.ndarray) -> np.ndarray:
    """A defensive, immutable copy of a characterization vector.

    The log stores records forever and hands them to concurrent readers;
    an aliased caller array mutated after insertion would silently change
    past query answers (mean signatures, similarity distances).  Every
    signature therefore enters the log as a fresh read-only copy.
    """
    sig = np.array(signature, dtype=float, copy=True)
    sig.setflags(write=False)
    return sig


class HistoryLog:
    """Append-only execution log with sealed segments and compaction.

    Parameters
    ----------
    segment_records:
        Appends per segment before it is sealed immutable.
    compact_after:
        Sealed segments tolerated before they are merged into the
        compacted base tuple.
    """

    def __init__(self, segment_records: int = 1024, compact_after: int = 8):
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        if compact_after < 1:
            raise ValueError("compact_after must be >= 1")
        self.segment_records = segment_records
        self.compact_after = compact_after
        self._lock = threading.Lock()
        self._base: tuple[ExecutionRecord, ...] = ()      # compacted prefix
        self._sealed: tuple[tuple[ExecutionRecord, ...], ...] = ()
        self._active: list[ExecutionRecord] = []
        self._count = 0
        self._next_id = 0
        self._clock = 0
        # (version, snapshot-tuple); swapped atomically, read without the
        # lock.  Version bumps on every append/seal/compaction.
        self._version = 0
        self._snapshot_cache: tuple[int, tuple[ExecutionRecord, ...]] = (0, ())
        # --- telemetry ----------------------------------------------------
        self.n_appends = 0
        self.n_seals = 0
        self.n_compactions = 0

    # --- writers ----------------------------------------------------------
    def append_new(self, *, tenant: str, workload_label: str, input_mb: float,
                   cluster: str, config: Configuration, runtime_s: float,
                   success: bool, signature: np.ndarray) -> ExecutionRecord:
        """Build and append a record, allocating id/clock atomically."""
        sig = readonly_signature(signature)
        with self._lock:
            rec = ExecutionRecord(
                record_id=self._next_id,
                tenant=tenant,
                workload_label=workload_label,
                input_mb=input_mb,
                cluster=cluster,
                config=config,
                runtime_s=runtime_s,
                success=success,
                signature=sig,
                timestamp=self._clock,
            )
            self._next_id += 1
            self._clock += 1
            self._append_locked(rec)
        return rec

    def append(self, record: ExecutionRecord) -> ExecutionRecord:
        """Append a pre-built record (e.g. loaded from disk).

        The record's signature is replaced with a read-only copy and the
        id/clock counters advance past the record's, so records created
        afterwards never collide with loaded ones.
        """
        record = ExecutionRecord(
            record_id=record.record_id,
            tenant=record.tenant,
            workload_label=record.workload_label,
            input_mb=record.input_mb,
            cluster=record.cluster,
            config=record.config,
            runtime_s=record.runtime_s,
            success=record.success,
            signature=readonly_signature(record.signature),
            timestamp=record.timestamp,
        )
        with self._lock:
            self._next_id = max(self._next_id, record.record_id + 1)
            self._clock = max(self._clock, record.timestamp + 1)
            self._append_locked(record)
        return record

    def _append_locked(self, record: ExecutionRecord) -> None:
        self._active.append(record)
        self._count += 1
        self.n_appends += 1
        if len(self._active) >= self.segment_records:
            self._seal_locked()
        self._version += 1

    def _seal_locked(self) -> None:
        self._sealed = self._sealed + (tuple(self._active),)
        self._active = []
        self.n_seals += 1
        if len(self._sealed) > self.compact_after:
            self._compact_locked()

    def _compact_locked(self) -> None:
        merged: list[ExecutionRecord] = list(self._base)
        for segment in self._sealed:
            merged.extend(segment)
        # Single atomic publication point: snapshots taken concurrently
        # keep referencing the old immutable segments.
        self._base = tuple(merged)
        self._sealed = ()
        self.n_compactions += 1

    def compact(self) -> None:
        """Force a seal + compaction now (tests and shutdown hooks)."""
        with self._lock:
            if self._active:
                self._seal_locked()
            if self._sealed:
                self._compact_locked()
            self._version += 1

    # --- readers ----------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def version(self) -> int:
        """Monotonic change counter; bumps on every append/seal/compaction.

        Derived caches (the snapshot cache here, the signature index in
        :mod:`repro.core.simindex`) key their freshness on this — a
        single int read, safe without the lock.
        """
        return self._version

    def tail(self, start: int) -> tuple[ExecutionRecord, ...]:
        """Records from append-order position ``start`` on.

        Unlike :meth:`snapshot` this never concatenates the whole log —
        it walks only the segments past ``start`` — so an incremental
        consumer (the signature index) pays O(new records), not O(log).
        Append order is stable across sealing *and* compaction (both
        merge in order), so a consumer that has processed ``start``
        records never sees reordered or duplicated history.
        """
        if start <= 0:
            return self.snapshot()
        with self._lock:
            if start >= self._count:
                return ()
            out: list[ExecutionRecord] = []
            pos = 0
            for segment in (self._base, *self._sealed, self._active):
                end = pos + len(segment)
                if end > start:
                    out.extend(segment[max(0, start - pos):])
                pos = end
            return tuple(out)

    def __iter__(self) -> Iterator[ExecutionRecord]:
        return iter(self.snapshot())

    def snapshot(self) -> tuple[ExecutionRecord, ...]:
        """Every record in append order, as one immutable tuple.

        Safe to call from any thread without coordination: the cached
        tuple for the current version is returned when fresh; otherwise
        the snapshot is rebuilt under the lock (at most once per
        version) and re-published atomically.
        """
        version, snap = self._snapshot_cache
        if version == self._version:
            return snap
        with self._lock:
            version, snap = self._snapshot_cache
            if version == self._version:
                return snap
            parts: list[ExecutionRecord] = list(self._base)
            for segment in self._sealed:
                parts.extend(segment)
            parts.extend(self._active)
            snap = tuple(parts)
            self._snapshot_cache = (self._version, snap)
        return snap

    def reserve_ids(self) -> tuple[int, int]:
        """Peek the next (record_id, timestamp) the log would allocate."""
        with self._lock:
            return self._next_id, self._clock

    def segment_stats(self) -> dict:
        """Layout telemetry: base size, sealed segment sizes, active size."""
        with self._lock:
            return {
                "base_records": len(self._base),
                "sealed_segments": [len(s) for s in self._sealed],
                "active_records": len(self._active),
                "n_appends": self.n_appends,
                "n_seals": self.n_seals,
                "n_compactions": self.n_compactions,
            }

    def scan(self, predicate: Callable[[ExecutionRecord], bool]) -> list[ExecutionRecord]:
        """Filtered scan over a consistent snapshot."""
        return [r for r in self.snapshot() if predicate(r)]
