"""Per-phase wall-time profiling for the tuning service hot path.

PR 7's service bench reports end-to-end runs/s and p99 latency, but
neither says *where* a deployment's time goes — suggest (surrogate
refit + acquisition), evaluate (simulator executions), ingest
(production-run recording), or similarity (transfer lookup + SLO
reference).  :class:`PhaseProfiler` accumulates wall time and call
counts per named phase so the service surfaces that split in
``counters()`` and ``BENCH_service.json`` — the observability that
justified the suggest-path work and guards it against regressing.

Timing uses ``time.perf_counter`` (monotonic, telemetry-grade — the
wall-clock functions are banned from the deterministic scopes by
staticcheck RS002, perf_counter explicitly is not).  Accumulation is a
single lock-guarded float add, cheap enough to leave on in production;
profilers are thread-safe because shard workers record concurrently.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["PhaseProfiler"]

#: canonical phase names the service stack records
PHASES = ("suggest", "evaluate", "ingest", "similarity")


class PhaseProfiler:
    """Thread-safe accumulator of per-phase wall time and call counts."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one block under ``name`` (exceptions still charged)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        with self._lock:
            self._seconds[name] = self._seconds.get(name, 0.0) + seconds
            self._calls[name] = self._calls.get(name, 0) + calls

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's totals into this one (aggregation)."""
        for name, seconds, calls in other.rows():
            self.add(name, seconds, calls)

    def rows(self) -> list[tuple[str, float, int]]:
        with self._lock:
            return [
                (name, self._seconds[name], self._calls[name])
                for name in sorted(self._seconds)
            ]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{phase: {"seconds": total, "calls": n, "mean_ms": per-call}}``."""
        out: dict[str, dict[str, float]] = {}
        for name, seconds, calls in self.rows():
            out[name] = {
                "seconds": seconds,
                "calls": calls,
                "mean_ms": 1e3 * seconds / calls if calls else 0.0,
            }
        return out

    def total_seconds(self) -> float:
        with self._lock:
            return sum(self._seconds.values())
