"""Elastic cluster sizing for recurring workloads (Section IV.B).

Static cloud choices "miss the opportunity of using the cloud's
elasticity features when the workload changes".  The
:class:`ElasticScaler` learns an Ernest-style scaling model from the
deployment's own production history and re-sizes the cluster per run as
the input grows or shrinks — minimizing dollar cost, optionally under a
runtime ceiling (the cost/runtime trade-off of Section IV.D).

It explores deliberately at first (a model fitted on one cluster size
cannot extrapolate over machines), then exploits the fitted model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cloud.cluster import Cluster
from ..cloud.instances import InstanceType
from ..tuning.ernest import ErnestModel

__all__ = ["ElasticScaler", "ScalerObservation"]


@dataclass(frozen=True)
class ScalerObservation:
    nodes: int
    input_mb: float
    runtime_s: float


@dataclass
class ElasticScaler:
    """Chooses cluster sizes for successive production runs."""

    instance: InstanceType
    min_nodes: int = 2
    max_nodes: int = 20
    #: optimize "price" (USD per run) or "runtime"
    objective: str = "price"
    #: optional runtime ceiling when optimizing price
    runtime_cap_s: float | None = None
    _observations: list[ScalerObservation] = field(default_factory=list)
    _explore_plan: list[int] = field(default_factory=list)

    def __post_init__(self):
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if self.objective not in ("price", "runtime"):
            raise ValueError("objective must be 'price' or 'runtime'")
        lo, hi = self.min_nodes, self.max_nodes
        mid = (lo + hi) // 2
        self._explore_plan = [mid, lo, hi]

    # --- learning ----------------------------------------------------------
    def observe(self, nodes: int, input_mb: float, runtime_s: float) -> None:
        if runtime_s <= 0:
            raise ValueError("runtime must be positive")
        self._observations.append(ScalerObservation(nodes, input_mb, runtime_s))

    def _distinct_node_counts(self) -> int:
        return len({o.nodes for o in self._observations})

    def _fitted_model(self) -> ErnestModel | None:
        if len(self._observations) < 3 or self._distinct_node_counts() < 2:
            return None
        model = ErnestModel()
        model.fit(
            [o.nodes for o in self._observations],
            [o.input_mb for o in self._observations],
            [o.runtime_s for o in self._observations],
        )
        return model

    # --- decisions -----------------------------------------------------------
    def choose_nodes(self, input_mb: float) -> int:
        """Cluster size for the next run over ``input_mb`` of input."""
        model = self._fitted_model()
        if model is None:
            # Exploration: visit distinct sizes to identify the model.
            idx = min(len(self._observations), len(self._explore_plan) - 1)
            return self._explore_plan[idx]
        sizes = np.arange(self.min_nodes, self.max_nodes + 1)
        predicted = model.predict(sizes.astype(float),
                                  np.full(len(sizes), input_mb))
        predicted = np.maximum(predicted, 1.0)
        if self.objective == "runtime":
            return int(sizes[int(np.argmin(predicted))])
        cost = predicted * sizes * self.instance.price_per_hour / 3600.0
        if self.runtime_cap_s is not None:
            feasible = predicted <= self.runtime_cap_s
            if feasible.any():
                cost = np.where(feasible, cost, np.inf)
        return int(sizes[int(np.argmin(cost))])

    def cluster_for(self, input_mb: float) -> Cluster:
        return Cluster(self.instance, self.choose_nodes(input_mb))

    @property
    def n_observations(self) -> int:
        return len(self._observations)
