"""The seamless tuning service — the paper's vision, end to end.

Implements Fig. 1's two-stage flow as a provider-side service with the
four principles of Section IV:

1. *Seamlessness*: :meth:`TuningService.submit` takes a workload and an
   SLO; cluster choice, DISC configuration, probing and model choice are
   invisible to the tenant.
2. *Resilience to change*: :meth:`run_production` monitors recurring
   executions with a drift detector and re-tunes automatically when the
   workload (input size) or environment (interference) shifts.
3. *Bounded user cost*: exploratory executions are charged to a
   provider-side ledger; sessions stop early via CherryPick's EI rule;
   similar workloads' history warm-starts new tenants' models.
4. *Tuning-effectiveness SLOs*: every deployment carries an SLO report
   comparing achieved runtime against the chosen reference.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..cloud.cluster import Cluster
from ..cloud.interference import QUIET, InterferenceModel
from ..cloud.pricing import CostLedger
from ..config.cloud_params import cloud_space
from ..config.space import Configuration, ConfigurationSpace
from ..config.spark_params import spark_core_space
from ..engine import EngineObjective, EvaluationEngine
from ..sparksim.simulator import SparkSimulator
from ..tuning.base import Tuner, TuningResult, run_tuner_batched
from ..tuning.bo.bayesopt import BayesOptTuner
from .characterization import probe_configuration, signature
from .history import HistoryStore
from .profiling import PhaseProfiler
from .retuning import DriftDetector, PageHinkleyDetector
from .session import SessionConfig, TuningSession
from .slo import SLOMetric, SLOReport, TuningSLO, evaluate_slo
from .transfer import build_transfer_plan

__all__ = ["Deployment", "ProductionRun", "TuningService"]


@dataclass
class Deployment:
    """A tuned workload deployment handed back to the tenant."""

    tenant: str
    workload_label: str
    workload: object
    input_mb: float
    cluster: Cluster
    config: Configuration
    expected_runtime_s: float
    slo_report: SLOReport | None
    tuning_evaluations: int
    transferred_from: list[str] = field(default_factory=list)
    retuned_count: int = 0


@dataclass(frozen=True)
class ProductionRun:
    """One production execution plus any service action taken.

    The failure-policy fields audit how the service treated the run:
    whether its runtime entered the drift detector (only successful runs
    do — a crash's penalized runtime would poison the statistics), the
    consecutive-failure count after this run, and why a re-tune fired
    (``"drift"`` from the detector, ``"failures"`` from the
    consecutive-failure policy, or ``None``).
    """

    index: int
    runtime_s: float
    success: bool
    input_mb: float
    retuned: bool
    detector_fed: bool = False
    consecutive_failures: int = 0
    retune_reason: str | None = None


class TuningService:
    """Provider-side seamless configuration tuning (Fig. 1 realized)."""

    def __init__(self, provider: str = "aws",
                 simulator: SparkSimulator | None = None,
                 disc_space: ConfigurationSpace | None = None,
                 interference_level: float = 0.0,
                 engine: EvaluationEngine | None = None,
                 executor: str = "serial",
                 max_workers: int | None = None,
                 store: HistoryStore | None = None,
                 ledger: CostLedger | None = None,
                 seed: int = 0):
        self.provider = provider
        self.simulator = simulator or SparkSimulator()
        self.disc_space = disc_space or spark_core_space()
        self.cloud_space = cloud_space(provider)
        #: injectable so several service shards can share one provider
        #: history log and one billing ledger (both are thread-safe)
        self.store = store if store is not None else HistoryStore()
        self.ledger = ledger if ledger is not None else CostLedger()
        self.seed = seed
        self._session_counter = 0
        # Session seeds must be collision-free under the concurrent front
        # end: two sessions sharing a seed would draw identical candidate
        # streams and masquerade as cross-tenant amortization.
        self._seed_lock = threading.Lock()
        self.interference = (
            InterferenceModel(level=interference_level, seed=seed)
            if interference_level > 0 else None
        )
        #: all exploratory executions ride one engine, so identical
        #: candidates across sessions and tenants are answered from the
        #: memoization cache — the provider amortizes tuning cost
        #: (paper principle 3) and the counters quantify it.  Caveat:
        #: with ``interference_level > 0`` each evaluation samples its
        #: own environment, and the environment is part of the cache
        #: key, so cross-session repeats of a candidate re-simulate;
        #: the engine's ``n_env_distinct_misses`` counter measures that
        #: lost amortization.
        self.engine = engine or EvaluationEngine(
            simulator=self.simulator, executor=executor,
            max_workers=max_workers,
        )
        #: per-phase wall-time split of this service's hot path —
        #: suggest (surrogate + acquisition), evaluate (simulator),
        #: ingest (production recording), similarity (transfer + SLO
        #: reference).  Thread-safe; shard workers record concurrently.
        self.profiler = PhaseProfiler()

    def _next_seed(self) -> int:
        with self._seed_lock:
            self._session_counter += 1
            return self.seed + 7919 * self._session_counter

    def engine_counters(self) -> dict[str, float]:
        """Hit/miss/latency counters of the shared evaluation engine."""
        return self.engine.counters()

    def counters(self) -> dict:
        """One telemetry snapshot: engine, per-phase time, index state."""
        return {
            "engine": self.engine.counters(),
            "phases": self.profiler.snapshot(),
            "signature_index": self.store.index().counters(),
        }

    # --- stage 1: cloud configuration ------------------------------------
    def tune_cloud(self, workload, input_mb: float, budget: int = 12,
                   metric: str = "price") -> tuple[Cluster, int]:
        """Pick instance type + cluster size (CherryPick-style BO).

        Returns the provisioned cluster and the evaluations spent.
        """
        seed = self._next_seed()
        objective = EngineObjective(
            self.engine, workload, input_mb, cluster=None,
            base_config=dict(probe_configuration()),
            interference=self.interference,
            # Per-config seeding keys the noise to the candidate, so the
            # same candidate re-proposed in any session is a cache hit.
            ledger=self.ledger, metric=metric, seed=self.seed,
            # The probe's executor sizing is repaired per candidate
            # cluster: stage 1 compares clusters, not crash behaviour.
            repair=True,
        )
        n_init = min(6, budget)
        tuner = BayesOptTuner(self.cloud_space, seed=seed, n_init=n_init)
        evaluations = 0
        for i in range(budget):
            with self.profiler.phase("suggest"):
                config = tuner.suggest()
            with self.profiler.phase("evaluate"):
                cost = objective(config)
            tuner.observe(config, cost)
            evaluations += 1
            # Consult the EI stop rule as soon as the initial design is
            # observed — n_init is the tuner's actual design size, not a
            # hard-coded 6, so small budgets get the rule too.
            if evaluations >= n_init and tuner.should_stop(0.05):
                break
        best = tuner.best.config
        cluster = Cluster.of(best["cloud.instance_type"], int(best["cloud.cluster_size"]))
        return cluster, evaluations

    # --- stage 2: DISC configuration ------------------------------------------
    def tune_disc(self, tenant: str, workload_label: str, workload,
                  input_mb: float, cluster: Cluster, budget: int = 25,
                  use_transfer: bool = True,
                  batch_size: int = 1,
                  tuner: Tuner | None = None) -> tuple[TuningSession, list[str]]:
        """Tune the Spark configuration, warm-started from similar history.

        ``tuner`` overrides the default Bayesian optimizer — the service
        layer uses this to run lightweight (e.g. random-search) sessions
        under load; transfer observations are then injected through the
        tuner's plain ``observe`` protocol.
        """
        seed = self._next_seed()
        objective = EngineObjective(
            self.engine, workload, input_mb, cluster=cluster,
            interference=self.interference, ledger=self.ledger,
            # Service-level seed + per-config noise: identical candidates
            # across sessions/tenants are cache hits (amortization) — in
            # quiet environments; under interference the sampled env joins
            # the cache key and such repeats re-simulate (tracked by the
            # engine's n_env_distinct_misses counter).
            seed=self.seed,
            # The service repairs obviously-unsatisfiable executor sizing
            # before launching (a competent operator never requests 4-core
            # executors on 2-core nodes); genuinely bad-but-launchable
            # configurations still run and still crash.
            repair=True,
        )
        # Probe to characterize, then look for transferable knowledge.
        with self.profiler.phase("evaluate"):
            probe_cost = objective(probe_configuration())
        probe_result = objective.last_result
        sig = signature(probe_result)
        # Record the probe exactly as it launched (fully resolved and
        # repaired): the tuner observes the post-repair projection below,
        # and a history entry for a configuration that never ran would
        # poison every transfer warm-start replaying it.
        _, probe_as_run = objective.resolve(probe_configuration())
        self.store.record(
            tenant, workload_label, input_mb, cluster.describe(),
            probe_as_run, probe_result, sig,
        )
        warm_start, sources = [], []
        if use_transfer:
            with self.profiler.phase("similarity"):
                plan = build_transfer_plan(
                    self.store, sig, self.disc_space,
                    exclude=(tenant, workload_label),
                    target_scale_runtime=probe_cost,
                )
            warm_start = plan.observations
            sources = [f"{s.tenant}/{s.workload_label}" for s in plan.sources]
        if tuner is None:
            tuner = BayesOptTuner(
                self.disc_space, seed=seed,
                n_init=4 if warm_start else 8,
                warm_start=warm_start or None,
            )
        elif warm_start:
            tuner.observe_batch(warm_start)
        session = TuningSession(
            tenant=tenant, workload_label=workload_label, workload=workload,
            input_mb=input_mb, cluster=cluster, tuner=tuner,
            objective=objective, store=self.store,
            profiler=self.profiler,
        )
        # The probe is a paid measurement: feed it to the tuner and the
        # campaign history (as it actually launched, post-repair), so the
        # deployed configuration is never worse than the probe.
        projected = Configuration({
            name: probe_as_run[name] for name in self.disc_space.names
        })
        probe_obs = tuner.observe(
            projected, probe_cost,
            succeeded=bool(getattr(probe_result, "success", True)),
        )
        session.result.history.append(probe_obs)

        session.run(
            SessionConfig(budget=budget, min_evaluations=min(10, budget)),
            batch_size=batch_size,
        )
        return session, sources

    # --- the seamless front door ---------------------------------------------
    def submit(self, tenant: str, workload, input_mb: float,
               workload_label: str | None = None,
               slo: TuningSLO | None = None,
               cloud_budget: int = 12, disc_budget: int = 25,
               use_transfer: bool = True,
               cloud_metric: str = "price",
               batch_size: int = 1,
               cluster: Cluster | None = None,
               disc_tuner: Tuner | None = None) -> Deployment:
        """Deploy a workload with everything tuned on the tenant's behalf.

        ``cloud_metric`` expresses the user's trade-off (Section IV.D: "do
        I need the results quickly no matter the cost, or am I willing to
        wait?") — ``"price"`` minimizes dollar cost per run, ``"runtime"``
        minimizes wall-clock.  A caller-supplied ``cluster`` skips the
        cloud stage entirely (the service layer pins recurring tenants to
        their provisioned cluster), and ``disc_tuner`` overrides the DISC
        stage's optimizer.
        """
        label = workload_label or workload.name
        if cluster is not None:
            cloud_evals = 0
        else:
            cluster, cloud_evals = self.tune_cloud(
                workload, input_mb, budget=cloud_budget, metric=cloud_metric,
            )
        session, sources = self.tune_disc(
            tenant, label, workload, input_mb, cluster,
            budget=disc_budget, use_transfer=use_transfer,
            batch_size=batch_size, tuner=disc_tuner,
        )
        best = session.result.best
        # Deploy the configuration as the objective actually launched it
        # (fully resolved against defaults and repaired to fit the cluster).
        _, deployed_config = session.objective.resolve(best.config)
        slo_report = None
        reference_evals = 0
        if slo is not None:
            reference, reference_evals = self._slo_reference(
                slo, tenant, label, session,
            )
            if reference is not None:
                slo_report = evaluate_slo(
                    slo, best.cost, reference,
                    reference_evaluations=reference_evals,
                )
        return Deployment(
            tenant=tenant, workload_label=label, workload=workload,
            input_mb=input_mb, cluster=cluster, config=deployed_config,
            expected_runtime_s=best.cost, slo_report=slo_report,
            # Every paid evaluation counts — including the SLO reference
            # run, which is charged to the ledger like any other.
            tuning_evaluations=(
                cloud_evals + session.result.n_evaluations + reference_evals
            ),
            transferred_from=sources,
        )

    def bulk_evaluate(self, workload, input_mb: float, cluster: Cluster,
                      tuner: Tuner, budget: int,
                      batch_size: int = 16,
                      metric: str = "runtime") -> TuningResult:
        """Screen many candidates through the shared engine, batched.

        The provider-side bulk path ("more than 2000 configurations
        tested"): population tuners propose whole batches, the engine
        memoizes repeats and can fan misses out to parallel workers, and
        every execution is charged to the provider ledger.
        """
        objective = EngineObjective(
            self.engine, workload, input_mb, cluster=cluster,
            interference=self.interference, ledger=self.ledger,
            metric=metric, seed=self.seed, repair=True,
        )
        return run_tuner_batched(tuner, objective, budget, batch_size=batch_size)

    def _slo_reference(self, slo: TuningSLO, tenant: str, label: str,
                       session: TuningSession) -> tuple[float | None, int]:
        """The SLO's reference runtime plus the paid evaluations it cost.

        ``IMPROVEMENT_OVER_DEFAULT`` measures the default configuration —
        a real, ledger-charged execution that happens *after* the session
        ended, so it must be reported to the caller and counted toward
        the deployment's evaluation total (it used to be silently charged
        and uncounted).  The history-based metrics are free lookups.
        """
        if slo.metric is SLOMetric.IMPROVEMENT_OVER_DEFAULT:
            with self.profiler.phase("evaluate"):
                cost = session.objective(self.disc_space.default_configuration())
            return cost, 1
        if slo.metric is SLOMetric.WITHIN_BEST_SIMILAR:
            # Masked min over the index's per-key best runtimes — this
            # used to scan every successful record per deployment.
            with self.profiler.phase("similarity"):
                return self.store.index().best_runtime_excluding(
                    (tenant, label)
                ), 0
        # WITHIN_OPTIMAL: best the service has ever seen for this workload.
        with self.profiler.phase("similarity"):
            best = self.store.best_for(tenant, label)
        return (best.runtime_s if best else None), 0

    # --- principle 2: production monitoring + auto re-tuning ----------------
    def run_production(self, deployment: Deployment, input_sizes_mb,
                       detector: DriftDetector | None = None,
                       retune_budget: int = 15,
                       max_consecutive_failures: int = 3) -> list[ProductionRun]:
        """Run recurring executions, re-tuning when drift is detected.

        Failure policy: the drift detector sees the *raw runtimes of
        successful runs only*.  Feeding it a crash's penalized
        ``effective_runtime`` (floored at an hour) would poison its
        statistics and fire a false re-tune on the very next sample.
        Crashes are handled explicitly instead: ``max_consecutive_failures``
        failed runs in a row trigger an immediate re-tune (the deployed
        configuration is evidently broken for the current conditions) and
        re-baseline the detector.  Every run's treatment is audited on its
        :class:`ProductionRun`.
        """
        detector = detector or PageHinkleyDetector()
        if max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")
        runs: list[ProductionRun] = []
        seed = self._next_seed()
        consecutive_failures = 0
        for i, input_mb in enumerate(input_sizes_mb):
            env = self.interference.step() if self.interference else QUIET
            result = self.simulator.run(
                deployment.workload, input_mb, deployment.cluster,
                deployment.config, env=env, seed=seed + i,
            )
            self.ledger.charge_production(deployment.cluster, result.runtime_s)
            self.store.record(
                deployment.tenant, deployment.workload_label, input_mb,
                deployment.cluster.describe(), deployment.config, result,
                signature(result),
            )
            retune_reason = None
            detector_fed = False
            if result.success:
                consecutive_failures = 0
                detector_fed = True
                if detector.update(result.runtime_s):
                    retune_reason = "drift"
            else:
                consecutive_failures += 1
                if consecutive_failures >= max_consecutive_failures:
                    retune_reason = "failures"
            if retune_reason is not None:
                session, _ = self.tune_disc(
                    deployment.tenant, deployment.workload_label,
                    deployment.workload, input_mb, deployment.cluster,
                    budget=retune_budget, use_transfer=True,
                )
                _, deployment.config = session.objective.resolve(
                    session.result.best_config
                )
                deployment.expected_runtime_s = session.result.best_cost
                deployment.input_mb = input_mb
                deployment.retuned_count += 1
                if retune_reason == "failures":
                    # The detector re-baselines after any re-tune; a
                    # drift alarm already reset it internally.
                    detector.reset()
            runs.append(ProductionRun(
                index=i, runtime_s=result.runtime_s, success=result.success,
                input_mb=input_mb, retuned=retune_reason is not None,
                detector_fed=detector_fed,
                consecutive_failures=consecutive_failures,
                retune_reason=retune_reason,
            ))
            if retune_reason == "failures":
                consecutive_failures = 0
        return runs
