"""Provider-side execution history store.

The centerpiece of the paper's feasibility argument (Section IV): "The
cloud is a centralized place that is able to keep a record of the
different workloads' execution history under different cloud and DISC
system configurations, across users."  The store records every execution
with its observable metrics signature; the similarity and transfer
modules mine it *without* access to ground-truth workload identity
across tenants (labels are per-tenant opaque strings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.space import Configuration
from ..sparksim.metrics import ExecutionResult

__all__ = ["ExecutionRecord", "HistoryStore"]


@dataclass(frozen=True)
class ExecutionRecord:
    """One workload execution as the provider sees it."""

    record_id: int
    tenant: str
    workload_label: str          # tenant-scoped opaque label
    input_mb: float
    cluster: str                 # e.g. "4x h1.4xlarge (aws)"
    config: Configuration
    runtime_s: float
    success: bool
    signature: np.ndarray        # workload characterization vector
    #: logical timestamp (provider-side event counter)
    timestamp: int = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.tenant, self.workload_label)


class HistoryStore:
    """In-memory multi-tenant execution history with query helpers."""

    def __init__(self):
        self._records: list[ExecutionRecord] = []
        self._next_id = 0
        self._clock = 0

    def __len__(self) -> int:
        return len(self._records)

    def record(self, tenant: str, workload_label: str, input_mb: float,
               cluster: str, config: Configuration, result: ExecutionResult,
               signature: np.ndarray) -> ExecutionRecord:
        rec = ExecutionRecord(
            record_id=self._next_id,
            tenant=tenant,
            workload_label=workload_label,
            input_mb=input_mb,
            cluster=cluster,
            config=config,
            runtime_s=result.runtime_s,
            success=result.success,
            signature=np.asarray(signature, dtype=float),
            timestamp=self._clock,
        )
        self._next_id += 1
        self._clock += 1
        self._records.append(rec)
        return rec

    def add(self, record: ExecutionRecord) -> None:
        """Insert a pre-built record (e.g. loaded from disk).

        Advances the id/clock counters past the record's, so records
        created afterwards never collide with loaded ones.
        """
        self._records.append(record)
        self._next_id = max(self._next_id, record.record_id + 1)
        self._clock = max(self._clock, record.timestamp + 1)

    # --- queries ----------------------------------------------------------
    def all(self) -> list[ExecutionRecord]:
        return list(self._records)

    def for_workload(self, tenant: str, workload_label: str) -> list[ExecutionRecord]:
        return [r for r in self._records if r.key == (tenant, workload_label)]

    def tenants(self) -> list[str]:
        return sorted({r.tenant for r in self._records})

    def workload_keys(self) -> list[tuple[str, str]]:
        return sorted({r.key for r in self._records})

    def successful(self) -> list[ExecutionRecord]:
        return [r for r in self._records if r.success]

    def best_for(self, tenant: str, workload_label: str) -> ExecutionRecord | None:
        runs = [r for r in self.for_workload(tenant, workload_label) if r.success]
        if not runs:
            return None
        return min(runs, key=lambda r: r.runtime_s)

    def mean_signature(self, tenant: str, workload_label: str) -> np.ndarray | None:
        """Averaged characterization across a workload's executions."""
        runs = [r for r in self.for_workload(tenant, workload_label) if r.success]
        if not runs:
            return None
        return np.mean([r.signature for r in runs], axis=0)

    def best_runtime_overall(self, workload_label_filter=None) -> float | None:
        """Best runtime of any similar-labelled workload (SLO reference)."""
        runs = [
            r for r in self.successful()
            if workload_label_filter is None or workload_label_filter(r)
        ]
        if not runs:
            return None
        return min(r.runtime_s for r in runs)
