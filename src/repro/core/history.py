"""Provider-side execution history store.

The centerpiece of the paper's feasibility argument (Section IV): "The
cloud is a centralized place that is able to keep a record of the
different workloads' execution history under different cloud and DISC
system configurations, across users."  The store records every execution
with its observable metrics signature; the similarity and transfer
modules mine it *without* access to ground-truth workload identity
across tenants (labels are per-tenant opaque strings).

Storage lives in an append-only :class:`~repro.core.histlog.HistoryLog`
(sealed immutable segments, periodic snapshot compaction, lock-free
concurrent readers); this class is the *query view* over one log.  The
view API is unchanged from the original in-memory store, so similarity,
transfer, SLO references and persistence work record-for-record
identically — but many tenants can now append and query concurrently,
and a single log can back several service shards at once.
"""

from __future__ import annotations

import numpy as np

from ..config.space import Configuration
from ..sparksim.metrics import ExecutionResult
from .histlog import ExecutionRecord, HistoryLog
from .simindex import SignatureIndex, signature_index

__all__ = ["ExecutionRecord", "HistoryStore"]


class HistoryStore:
    """Multi-tenant execution history: query view over a ``HistoryLog``."""

    def __init__(self, log: HistoryLog | None = None):
        self._log = log if log is not None else HistoryLog()

    @property
    def log(self) -> HistoryLog:
        """The backing append-only log (shared across service shards)."""
        return self._log

    def index(self) -> SignatureIndex:
        """The log's shared signature index (one per log, lazily built).

        Per-workload aggregate queries below route through it; every
        store view over the same log shares the same index instance.
        """
        return signature_index(self._log)

    def __len__(self) -> int:
        return len(self._log)

    def record(self, tenant: str, workload_label: str, input_mb: float,
               cluster: str, config: Configuration, result: ExecutionResult,
               signature: np.ndarray) -> ExecutionRecord:
        return self._log.append_new(
            tenant=tenant,
            workload_label=workload_label,
            input_mb=input_mb,
            cluster=cluster,
            config=config,
            runtime_s=result.runtime_s,
            success=result.success,
            signature=signature,
        )

    def add(self, record: ExecutionRecord) -> None:
        """Insert a pre-built record (e.g. loaded from disk).

        Advances the id/clock counters past the record's, so records
        created afterwards never collide with loaded ones.
        """
        self._log.append(record)

    # --- queries ----------------------------------------------------------
    def all(self) -> list[ExecutionRecord]:
        return list(self._log.snapshot())

    def for_workload(self, tenant: str, workload_label: str) -> list[ExecutionRecord]:
        return [r for r in self._log.snapshot() if r.key == (tenant, workload_label)]

    def tenants(self) -> list[str]:
        return sorted({r.tenant for r in self._log.snapshot()})

    def workload_keys(self) -> list[tuple[str, str]]:
        """Every (tenant, label) recorded, sorted — from the index's
        cached key order (invalidated by log version), not a fresh
        materialize-and-sort of the full snapshot per call."""
        return self.index().workload_keys()

    def successful(self) -> list[ExecutionRecord]:
        return [r for r in self._log.snapshot() if r.success]

    def best_for(self, tenant: str, workload_label: str) -> ExecutionRecord | None:
        return self.index().best_for(tenant, workload_label)

    def mean_signature(self, tenant: str, workload_label: str) -> np.ndarray | None:
        """Averaged characterization across a workload's executions."""
        return self.index().mean_signature(tenant, workload_label)

    def best_runtime_overall(self, workload_label_filter=None) -> float | None:
        """Best runtime of any similar-labelled workload (SLO reference).

        The unfiltered form is O(1) off the index's running global best;
        an arbitrary record predicate cannot be pre-aggregated, so the
        filtered form still scans.
        """
        if workload_label_filter is None:
            return self.index().best_runtime_overall()
        runs = [r for r in self.successful() if workload_label_filter(r)]
        if not runs:
            return None
        return min(r.runtime_s for r in runs)
