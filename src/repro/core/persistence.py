"""Durable storage for the provider-side execution history.

The vision's feasibility rests on the cloud keeping "a record of the
different workloads' execution history ... across users" — a record that
outlives any single tuning session.  This module serializes a
:class:`~repro.core.history.HistoryStore` to versioned JSON and back.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..config.space import Configuration
from .history import ExecutionRecord, HistoryStore

__all__ = ["save_history", "load_history", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def _record_to_dict(record: ExecutionRecord) -> dict:
    return {
        "record_id": record.record_id,
        "tenant": record.tenant,
        "workload_label": record.workload_label,
        "input_mb": record.input_mb,
        "cluster": record.cluster,
        "config": dict(record.config),
        "runtime_s": record.runtime_s,
        "success": record.success,
        "signature": [float(x) for x in record.signature],
        "timestamp": record.timestamp,
    }


def _record_from_dict(data: dict) -> ExecutionRecord:
    return ExecutionRecord(
        record_id=int(data["record_id"]),
        tenant=str(data["tenant"]),
        workload_label=str(data["workload_label"]),
        input_mb=float(data["input_mb"]),
        cluster=str(data["cluster"]),
        config=Configuration(data["config"]),
        runtime_s=float(data["runtime_s"]),
        success=bool(data["success"]),
        signature=np.asarray(data["signature"], dtype=float),
        timestamp=int(data["timestamp"]),
    )


def save_history(store: HistoryStore, path: str | Path) -> None:
    """Write the store to ``path`` as versioned JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "records": [_record_to_dict(r) for r in store.all()],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_history(path: str | Path) -> HistoryStore:
    """Read a store previously written by :func:`save_history`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported history format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    store = HistoryStore()
    for data in payload["records"]:
        store.add(_record_from_dict(data))
    return store
