"""Cross-workload transfer of tuning knowledge (paper challenge V.B).

"The idea here is to use a pre-trained model 'template' to initialize
models for workloads with similar characteristics, which are then
fine-tuned" — implemented as warm-starting: observations from similar
workloads in the provider history are injected (with cost rescaling and
a trust weight) into the new workload's model-based tuner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config.space import Configuration, ConfigurationSpace
from .history import HistoryStore
from .similarity import SimilarWorkload, find_similar_workloads

__all__ = ["TransferPlan", "build_transfer_plan"]


@dataclass
class TransferPlan:
    """Warm-start observations mined from similar workloads."""

    sources: list[SimilarWorkload]
    observations: list[tuple[Configuration, float]]

    @property
    def is_empty(self) -> bool:
        return not self.observations


def _project(config: Configuration, space: ConfigurationSpace) -> Configuration | None:
    """Restrict a historical configuration onto the target space.

    Histories may span different spaces (cloud vs DISC, different
    subsets); only parameters present and valid in the target space are
    usable.  Returns ``None`` when too few parameters overlap.
    """
    values = {}
    for p in space.parameters:
        if p.name not in config:
            return None
        try:
            p.validate(config[p.name])
        except ValueError:
            return None
        values[p.name] = config[p.name]
    return Configuration(values)


def build_transfer_plan(store: HistoryStore, target_signature: np.ndarray,
                        space: ConfigurationSpace,
                        exclude: tuple[str, str] | None = None,
                        k_sources: int = 2,
                        max_distance: float = 1.5,
                        max_observations: int = 20,
                        target_scale_runtime: float | None = None) -> TransferPlan:
    """Assemble warm-start observations from the nearest history workloads.

    Costs are rescaled so the source's *median* run maps onto
    ``target_scale_runtime`` (the target's probe runtime — itself a
    mid-quality configuration): what transfers is the *shape* of the
    response surface, not absolute runtimes.  Anchoring at the median
    keeps the source's best runs below the target's probe level, so the
    warmed model still expects improvements to exist.  The
    ``max_distance`` radius guards against negative transfer.
    """
    sources = find_similar_workloads(
        store, target_signature, k=k_sources, exclude=exclude,
        max_distance=max_distance,
    )
    observations: list[tuple[Configuration, float]] = []
    for src in sources:
        runs = [r for r in store.for_workload(src.tenant, src.workload_label) if r.success]
        if not runs:
            continue
        runs.sort(key=lambda r: r.runtime_s)
        median = runs[len(runs) // 2].runtime_s
        scale = 1.0
        if target_scale_runtime is not None and median > 0:
            scale = target_scale_runtime / median
        budget = max(1, max_observations // max(1, len(sources)))
        for rec in runs[: budget]:
            projected = _project(rec.config, space)
            if projected is None:
                continue
            observations.append((projected, rec.runtime_s * scale))
    return TransferPlan(sources=sources, observations=observations[:max_observations])
