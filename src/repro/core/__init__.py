"""The seamless tuning service: history, similarity, transfer, SLOs."""

from .amortization import AmortizationInputs, AmortizationReport, analyze_amortization
from .characterization import FEATURE_NAMES, probe_configuration, signature
from .elasticity import ElasticScaler, ScalerObservation
from .history import ExecutionRecord, HistoryStore
from .histlog import HistoryLog
from .persistence import load_history, save_history
from .profiling import PhaseProfiler
from .retuning import (
    CusumDetector,
    DriftDetector,
    FixedThresholdDetector,
    PageHinkleyDetector,
    WindowedZTestDetector,
)
from .service import Deployment, ProductionRun, TuningService
from .session import SessionConfig, TuningSession
from .simindex import SignatureIndex, signature_index
from .similarity import (
    KMedoids,
    SimilarWorkload,
    find_similar_workloads,
    find_similar_workloads_scan,
    signature_distance,
)
from .slo import SLOMetric, SLOReport, TuningSLO, evaluate_slo
from .transfer import TransferPlan, build_transfer_plan

__all__ = [
    "HistoryStore",
    "HistoryLog",
    "ExecutionRecord",
    "save_history",
    "load_history",
    "ElasticScaler",
    "ScalerObservation",
    "signature",
    "probe_configuration",
    "FEATURE_NAMES",
    "KMedoids",
    "SimilarWorkload",
    "find_similar_workloads",
    "find_similar_workloads_scan",
    "signature_distance",
    "SignatureIndex",
    "signature_index",
    "PhaseProfiler",
    "TransferPlan",
    "build_transfer_plan",
    "DriftDetector",
    "FixedThresholdDetector",
    "PageHinkleyDetector",
    "CusumDetector",
    "WindowedZTestDetector",
    "SLOMetric",
    "TuningSLO",
    "SLOReport",
    "evaluate_slo",
    "AmortizationInputs",
    "AmortizationReport",
    "analyze_amortization",
    "SessionConfig",
    "TuningSession",
    "Deployment",
    "ProductionRun",
    "TuningService",
]
