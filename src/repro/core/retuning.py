"""Re-tuning detection (paper challenge V.D).

"Simply picking fixed percentual runtime deltas as thresholds for
re-tuning are likely to lead to it being done either too frequently or
too late."  We implement the fixed-threshold baseline the paper
criticizes plus adaptive sequential change detectors (Page-Hinkley,
CUSUM, and a sliding-window z-test) so the E6 bench can measure
precision/recall/delay for each.

Detectors consume the per-run runtimes of a recurring workload and fire
when the workload's characteristics appear to have changed enough that
the current configuration is stale.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

import numpy as np

__all__ = [
    "DriftDetector",
    "FixedThresholdDetector",
    "PageHinkleyDetector",
    "CusumDetector",
    "WindowedZTestDetector",
]


class DriftDetector(ABC):
    """Sequential detector over a stream of runtimes."""

    def __init__(self):
        self.n_seen = 0
        self.n_alarms = 0

    def update(self, runtime_s: float) -> bool:
        """Feed one runtime; returns True when re-tuning should trigger."""
        if runtime_s <= 0 or not np.isfinite(runtime_s):
            raise ValueError(f"runtime must be positive and finite, got {runtime_s}")
        self.n_seen += 1
        fired = self._update(runtime_s)
        if fired:
            self.n_alarms += 1
            self.reset()
        return fired

    @abstractmethod
    def _update(self, runtime_s: float) -> bool: ...

    @abstractmethod
    def reset(self) -> None:
        """Restart after an alarm (re-tuning re-baselines the workload)."""


class FixedThresholdDetector(DriftDetector):
    """The baseline heuristic: alarm when a run exceeds (1+delta) x baseline.

    The baseline is the mean of the first ``warmup`` runs.  Over-sensitive
    to noise for small ``delta`` (false re-tunes) and blind to slow drift
    for large ``delta`` (late re-tunes) — exactly the failure mode
    Section V.D describes.
    """

    def __init__(self, delta: float = 0.2, warmup: int = 3):
        super().__init__()
        if delta <= 0:
            raise ValueError("delta must be positive")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.delta = delta
        self.warmup = warmup
        self._baseline_runs: list[float] = []

    def _update(self, runtime_s: float) -> bool:
        if len(self._baseline_runs) < self.warmup:
            self._baseline_runs.append(runtime_s)
            return False
        baseline = float(np.mean(self._baseline_runs))
        return runtime_s > baseline * (1.0 + self.delta)

    def reset(self) -> None:
        self._baseline_runs = []


class PageHinkleyDetector(DriftDetector):
    """Page-Hinkley test on log-runtimes (robust to scale)."""

    def __init__(self, delta: float = 0.03, threshold: float = 0.65):
        super().__init__()
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.delta = delta
        self.threshold = threshold
        self._mean = 0.0
        self._n = 0
        self._cumulative = 0.0
        self._minimum = 0.0

    def _update(self, runtime_s: float) -> bool:
        x = np.log(runtime_s)
        self._n += 1
        self._mean += (x - self._mean) / self._n
        self._cumulative += x - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        return (self._cumulative - self._minimum) > self.threshold

    def reset(self) -> None:
        self._mean = 0.0
        self._n = 0
        self._cumulative = 0.0
        self._minimum = 0.0


class CusumDetector(DriftDetector):
    """One-sided CUSUM on standardized log-runtime residuals."""

    def __init__(self, k: float = 0.75, h: float = 5.0, warmup: int = 8):
        super().__init__()
        if h <= 0:
            raise ValueError("h must be positive")
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.k = k
        self.h = h
        self.warmup = warmup
        self._history: list[float] = []
        self._s = 0.0

    def _update(self, runtime_s: float) -> bool:
        x = np.log(runtime_s)
        if len(self._history) < self.warmup:
            self._history.append(x)
            return False
        mu = float(np.mean(self._history))
        sigma = float(np.std(self._history)) or 1e-6
        z = (x - mu) / sigma
        self._s = max(0.0, self._s + z - self.k)
        return self._s > self.h

    def reset(self) -> None:
        self._history = []
        self._s = 0.0


class WindowedZTestDetector(DriftDetector):
    """Compare a recent window against a reference window (ADWIN-lite)."""

    def __init__(self, reference: int = 10, recent: int = 5, z_threshold: float = 4.5):
        super().__init__()
        if reference < 2 or recent < 2:
            raise ValueError("windows must hold at least 2 runs")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.reference_size = reference
        self.recent_size = recent
        self.z_threshold = z_threshold
        self._buffer: deque[float] = deque(maxlen=reference + recent)

    def _update(self, runtime_s: float) -> bool:
        self._buffer.append(np.log(runtime_s))
        if len(self._buffer) < self.reference_size + self.recent_size:
            return False
        data = np.array(self._buffer)
        ref, rec = data[: self.reference_size], data[self.reference_size:]
        pooled = np.sqrt(
            ref.var() / len(ref) + rec.var() / len(rec)
        ) or 1e-6
        z = (rec.mean() - ref.mean()) / pooled
        return abs(z) > self.z_threshold

    def reset(self) -> None:
        self._buffer.clear()
