"""repro — Seamless Configuration Tuning of Big Data Analytics.

A full reproduction of Fekry et al., "Towards Seamless Configuration
Tuning of Big Data Analytics" (ICDCS 2019): a provider-side self-tuning
service (:mod:`repro.core`) over a Spark simulator
(:mod:`repro.sparksim`), a cloud substrate (:mod:`repro.cloud`), a
HiBench-style workload suite (:mod:`repro.workloads`), and every tuning
strategy the paper surveys (:mod:`repro.tuning`).

Quickstart::

    from repro import TuningService
    from repro.workloads import PageRank

    service = TuningService(provider="aws", seed=42)
    deployment = service.submit("tenant-a", PageRank(), input_mb=12_000)
    print(deployment.cluster.describe(), deployment.expected_runtime_s)
"""

from .cloud import Cluster
from .config import Configuration, ConfigurationSpace, spark_core_space, spark_space
from .core import TuningService
from .sparksim import SparkSimulator
from .tuning import BayesOptTuner, RandomSearchTuner, SimulationObjective, run_tuner

__version__ = "1.0.0"

__all__ = [
    "TuningService",
    "SparkSimulator",
    "Cluster",
    "Configuration",
    "ConfigurationSpace",
    "spark_space",
    "spark_core_space",
    "SimulationObjective",
    "BayesOptTuner",
    "RandomSearchTuner",
    "run_tuner",
    "__version__",
]
