"""repro — Seamless Configuration Tuning of Big Data Analytics.

A full reproduction of Fekry et al., "Towards Seamless Configuration
Tuning of Big Data Analytics" (ICDCS 2019): a provider-side self-tuning
service (:mod:`repro.core`) over a Spark simulator
(:mod:`repro.sparksim`), a cloud substrate (:mod:`repro.cloud`), a
HiBench-style workload suite (:mod:`repro.workloads`), and every tuning
strategy the paper surveys (:mod:`repro.tuning`).

Quickstart::

    from repro import TuningService
    from repro.workloads import PageRank

    service = TuningService(provider="aws", seed=42)
    deployment = service.submit("tenant-a", PageRank(), input_mb=12_000)
    print(deployment.cluster.describe(), deployment.expected_runtime_s)

The top-level re-exports resolve lazily (PEP 562): importing ``repro``
does not pull in numpy/scipy, so tools that only need a submodule — the
``python -m repro.staticcheck`` warm path most of all — start in
milliseconds.  ``from repro import TuningService`` still works exactly
as before; the simulator stack loads on first attribute access.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

#: exported name -> submodule that defines it
_EXPORTS = {
    "TuningService": "core",
    "SparkSimulator": "sparksim",
    "Cluster": "cloud",
    "Configuration": "config",
    "ConfigurationSpace": "config",
    "spark_space": "config",
    "spark_core_space": "config",
    "SimulationObjective": "tuning",
    "BayesOptTuner": "tuning",
    "RandomSearchTuner": "tuning",
    "run_tuner": "tuning",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str) -> Any:
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(f".{submodule}", __name__), name)
    globals()[name] = value          # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
