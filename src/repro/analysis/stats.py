"""Statistics helpers for experiment analysis."""

from __future__ import annotations

import numpy as np

__all__ = ["bootstrap_ci", "geometric_mean", "summarize"]


def bootstrap_ci(values, statistic=np.mean, n_boot: int = 2000,
                 confidence: float = 0.95, seed: int = 0) -> tuple[float, float, float]:
    """(point, low, high) bootstrap confidence interval of ``statistic``."""
    values = np.asarray(list(values), dtype=float)
    if len(values) == 0:
        raise ValueError("need at least one value")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    point = float(statistic(values))
    if len(values) == 1:
        return point, point, point
    stats = np.array([
        statistic(values[rng.integers(0, len(values), len(values))])
        for _ in range(n_boot)
    ])
    alpha = (1 - confidence) / 2
    return point, float(np.quantile(stats, alpha)), float(np.quantile(stats, 1 - alpha))


def geometric_mean(values) -> float:
    """Geometric mean of positive values (for runtime ratios)."""
    values = np.asarray(list(values), dtype=float)
    if len(values) == 0:
        raise ValueError("need at least one value")
    if (values <= 0).any():
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.mean(np.log(values))))


def summarize(values) -> dict[str, float]:
    """Five-number-ish summary used by the bench reports."""
    values = np.asarray(list(values), dtype=float)
    if len(values) == 0:
        raise ValueError("need at least one value")
    return {
        "mean": float(values.mean()),
        "std": float(values.std()),
        "min": float(values.min()),
        "p50": float(np.median(values)),
        "p95": float(np.quantile(values, 0.95)),
        "max": float(values.max()),
    }
