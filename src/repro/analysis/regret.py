"""Regret curves and sample-efficiency comparisons across tuners."""

from __future__ import annotations

import numpy as np

from ..tuning.base import TuningResult

__all__ = ["normalized_regret_curve", "mean_incumbent_curve", "evaluations_to_target"]


def normalized_regret_curve(result: TuningResult, optimum: float) -> np.ndarray:
    """(incumbent - optimum) / optimum after each evaluation."""
    if optimum <= 0:
        raise ValueError("optimum must be positive")
    curve = np.asarray(result.incumbent_curve(), dtype=float)
    return (curve - optimum) / optimum


def mean_incumbent_curve(results: list[TuningResult], length: int | None = None) -> np.ndarray:
    """Average incumbent curve across repetitions (padded with final value)."""
    if not results:
        raise ValueError("need at least one result")
    curves = [r.incumbent_curve() for r in results]
    n = length or max(len(c) for c in curves)
    padded = np.array([
        c + [c[-1]] * (n - len(c)) if len(c) < n else c[:n] for c in curves
    ])
    return padded.mean(axis=0)


def evaluations_to_target(results: list[TuningResult], optimum: float,
                          fraction: float = 0.2) -> list[int | None]:
    """Per-repetition evaluations until within ``fraction`` of ``optimum``."""
    return [r.evaluations_to_within(fraction, optimum) for r in results]
