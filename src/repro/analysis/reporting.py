"""Plain-text table rendering for benchmark reports.

Benches print the same rows the paper's tables/claims contain; this
module keeps their formatting consistent and dependency-free.
"""

from __future__ import annotations

__all__ = ["render_table", "format_row"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_row(cells, widths) -> str:
    """Format one table row: first column left-aligned, rest right."""
    return " | ".join(
        _format_cell(c).rjust(w) if i else _format_cell(c).ljust(w)
        for i, (c, w) in enumerate(zip(cells, widths))
    )


def render_table(title: str, headers: list[str], rows: list[list]) -> str:
    """A fixed-width table with a title rule, ready to print."""
    if any(len(r) != len(headers) for r in rows):
        raise ValueError("all rows must match header length")
    str_rows = [[_format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "",
        f"=== {title} ===",
        format_row(headers, widths),
        "-+-".join("-" * w for w in widths),
    ]
    lines += [format_row(row, widths) for row in rows]
    return "\n".join(lines)
