"""Analysis helpers: statistics, regret curves, report tables."""

from .model_eval import PredictionScore, cross_validate
from .regret import evaluations_to_target, mean_incumbent_curve, normalized_regret_curve
from .reporting import format_row, render_table
from .stats import bootstrap_ci, geometric_mean, summarize

__all__ = [
    "PredictionScore",
    "cross_validate",
    "bootstrap_ci",
    "geometric_mean",
    "summarize",
    "normalized_regret_curve",
    "mean_incumbent_curve",
    "evaluations_to_target",
    "render_table",
    "format_row",
]
