"""Cross-validated evaluation of runtime-prediction models.

Supports the paper's "limited accuracy" discussion (Section II.C):
black-box models predict runtime from configuration vectors alone, and
their accuracy varies strongly across model families and workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["PredictionScore", "cross_validate"]


@dataclass(frozen=True)
class PredictionScore:
    """Aggregate prediction quality over CV folds."""

    rmse: float
    mape: float           # mean absolute percentage error
    spearman: float       # rank fidelity — what a tuner actually needs

    def describe(self) -> str:
        return (f"rmse={self.rmse:.3g} mape={self.mape:.1%} "
                f"rank-corr={self.spearman:.2f}")


def _spearman(a: np.ndarray, b: np.ndarray) -> float:
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    if ra.std() == 0 or rb.std() == 0:
        return 0.0
    return float(np.corrcoef(ra, rb)[0, 1])


def cross_validate(model_factory: Callable[[], object], X: np.ndarray,
                   y: np.ndarray, k: int = 5, seed: int = 0,
                   log_targets: bool = True) -> PredictionScore:
    """K-fold CV of a ``fit``/``predict`` model on (X, y).

    ``log_targets`` fits on log-runtimes (the spread across
    configurations covers orders of magnitude) while scoring on the
    original scale.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    if len(X) != len(y):
        raise ValueError("X and y lengths differ")
    if len(y) < 2 * k:
        raise ValueError(f"need at least {2 * k} samples for {k}-fold CV")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(y))
    folds = np.array_split(order, k)

    predictions = np.empty_like(y)
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        target = np.log(np.maximum(y[train], 1e-9)) if log_targets else y[train]
        model = model_factory()
        model.fit(X[train], target)
        pred = model.predict(X[test])
        if isinstance(pred, tuple):  # GP-style (mean, std)
            pred = pred[0]
        pred = np.asarray(pred, dtype=float).ravel()
        predictions[test] = np.exp(pred) if log_targets else pred

    err = predictions - y
    return PredictionScore(
        rmse=float(np.sqrt(np.mean(err**2))),
        mape=float(np.mean(np.abs(err) / np.maximum(y, 1e-9))),
        spearman=_spearman(predictions, y),
    )
