"""Executor memory layout under Spark's unified memory manager.

Translates the memory-related configuration parameters into the runtime
memory regions real Spark derives from them: a reserved region, a unified
(execution + storage) region sized by ``spark.memory.fraction``, and a
storage sub-region protected from execution eviction by
``spark.memory.storageFraction``.  Off-heap execution memory, when
enabled, extends the execution pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["ExecutorModel", "RESERVED_MB"]

#: Spark reserves 300 MB of heap for internal objects.
RESERVED_MB = 300.0


@dataclass(frozen=True)
class ExecutorModel:
    """Derived per-executor resources for a given configuration."""

    heap_mb: float
    cores: int
    concurrent_tasks: int
    unified_mb: float          # execution + storage pool
    storage_immune_mb: float   # storage protected from eviction
    offheap_mb: float

    @classmethod
    def from_config(cls, config: Mapping) -> "ExecutorModel":
        heap = float(config["spark.executor.memory"])
        cores = int(config["spark.executor.cores"])
        task_cpus = int(config.get("spark.task.cpus", 1))
        concurrent = max(1, cores // task_cpus)
        usable = max(0.0, heap - RESERVED_MB)
        unified = usable * float(config["spark.memory.fraction"])
        immune = unified * float(config["spark.memory.storageFraction"])
        offheap = 0.0
        if config.get("spark.memory.offHeap.enabled", False):
            offheap = float(config.get("spark.memory.offHeap.size", 0))
        return cls(
            heap_mb=heap,
            cores=cores,
            concurrent_tasks=concurrent,
            unified_mb=unified,
            storage_immune_mb=immune,
            offheap_mb=offheap,
        )

    def storage_capacity_mb(self) -> float:
        """Maximum cache footprint: storage may borrow all unified memory."""
        return self.unified_mb

    def execution_capacity_mb(self, storage_used_mb: float) -> float:
        """Execution pool size given the currently cached footprint.

        Execution can evict cached blocks down to the immune storage
        region, and additionally owns the off-heap pool.
        """
        protected = min(storage_used_mb, self.storage_immune_mb)
        return max(0.0, self.unified_mb - protected) + self.offheap_mb

    def execution_per_task_mb(self, storage_used_mb: float) -> float:
        return self.execution_capacity_mb(storage_used_mb) / self.concurrent_tasks
