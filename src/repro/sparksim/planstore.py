"""Persistent, cross-process store for compiled workload plans.

The in-memory plan cache dies with its process: every pool worker pays
the full ``workload.jobs()`` + :func:`compile_workload` cost again for
plans the parent already built.  :class:`PlanStore` is the disk tier
below the content cache — a directory of pickled
:class:`~repro.sparksim.dag.CompiledWorkload` files keyed by a content
fingerprint, shared by every process that points at the same directory
(pool initializers pass it down; see
:func:`repro.engine.executors._init_worker`).

Keying follows the staticcheck incremental cache: the digest folds in a
format version and a hash of the :mod:`repro.sparksim` package's own
sources, so editing the simulator invalidates every stored plan — a
stale store can never replay plans compiled by older code.  Writes are
atomic (``os.replace`` of a same-directory temp file) so concurrent
workers racing on the same plan either see a complete file or none;
corrupt or unreadable entries count as misses and are deleted.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

from .dag import CompiledWorkload

__all__ = ["PlanStore"]

_STORE_VERSION = 1


def _sparksim_digest() -> str:
    """Digest of the sparksim package's own sources (computed once)."""
    here = Path(__file__).resolve().parent
    h = hashlib.blake2b(digest_size=16)
    for path in sorted(here.glob("*.py")):
        h.update(path.name.encode())
        h.update(path.read_bytes())
    return h.hexdigest()


_SOURCE_DIGEST: str | None = None


def _source_digest() -> str:
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        _SOURCE_DIGEST = _sparksim_digest()
    return _SOURCE_DIGEST


class PlanStore:
    """A directory of compiled plans, shared across processes.

    Parameters
    ----------
    directory:
        Where plan files live.  Created on first write; passing the same
        path to several simulators (or pool workers) shares the store.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path_for(self, name: str, input_mb: float, fingerprint: str) -> Path:
        key = "|".join([
            f"v{_STORE_VERSION}",
            _source_digest(),
            name,
            repr(float(input_mb)),
            fingerprint,
        ])
        digest = hashlib.blake2b(key.encode(), digest_size=16).hexdigest()
        return self.directory / f"{digest}.plan"

    def get(self, name: str, input_mb: float,
            fingerprint: str) -> CompiledWorkload | None:
        """The stored plan for this content key, or ``None``."""
        path = self._path_for(name, input_mb, fingerprint)
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            compiled = pickle.loads(data)
            if not isinstance(compiled, CompiledWorkload):
                raise TypeError(type(compiled).__name__)
        except Exception:
            # Torn write from a crashed producer, or garbage: drop the
            # entry so the next put() heals the store.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return compiled

    def put(self, name: str, input_mb: float, fingerprint: str,
            compiled: CompiledWorkload) -> None:
        """Store ``compiled`` under this content key (atomic, best-effort)."""
        path = self._path_for(name, input_mb, fingerprint)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(pickle.dumps(compiled, protocol=5))
                os.replace(tmp, path)       # atomic on POSIX
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self.writes += 1
        except OSError:
            pass            # read-only / full disk: run without the store

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes}
