"""Serialization and compression cost tables, and shuffle I/O costs.

All CPU costs are seconds per MB of *uncompressed* data on a reference
core; compression ratios are compressed/uncompressed size.  Values follow
published JVM serializer and codec throughput measurements (Kryo ~2-4x
faster and ~40% denser than Java serialization; LZ4/Snappy ~GB/s with
mild ratios; Zstd slower but denser).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "Codec",
    "Serializer",
    "CODECS",
    "SERIALIZERS",
    "codec_of",
    "serializer_of",
    "ShuffleCost",
    "shuffle_write",
    "shuffle_read",
]


@dataclass(frozen=True)
class Codec:
    name: str
    ratio: float            # compressed size / uncompressed size
    compress_s_per_mb: float
    decompress_s_per_mb: float


@dataclass(frozen=True)
class Serializer:
    name: str
    serialize_s_per_mb: float
    deserialize_s_per_mb: float
    #: in-memory expansion of deserialized objects vs serialized bytes
    expansion: float
    #: serialized cache density vs raw data size
    serialized_ratio: float


CODECS: dict[str, Codec] = {
    "lz4": Codec("lz4", ratio=0.55, compress_s_per_mb=0.0028, decompress_s_per_mb=0.0012),
    "snappy": Codec("snappy", ratio=0.58, compress_s_per_mb=0.0024, decompress_s_per_mb=0.0012),
    "zstd": Codec("zstd", ratio=0.42, compress_s_per_mb=0.0095, decompress_s_per_mb=0.0030),
}

SERIALIZERS: dict[str, Serializer] = {
    "java": Serializer("java", serialize_s_per_mb=0.0140, deserialize_s_per_mb=0.0120,
                       expansion=3.0, serialized_ratio=1.15),
    "kryo": Serializer("kryo", serialize_s_per_mb=0.0050, deserialize_s_per_mb=0.0042,
                       expansion=2.1, serialized_ratio=0.85),
}


def codec_of(config: Mapping) -> Codec:
    return CODECS[config["spark.io.compression.codec"]]


def serializer_of(config: Mapping) -> Serializer:
    return SERIALIZERS[config["spark.serializer"]]


@dataclass(frozen=True)
class ShuffleCost:
    """CPU and byte costs of moving one task's shuffle data."""

    cpu_s: float        # serialization + compression work
    disk_mb: float      # bytes touching local disk
    net_mb: float       # bytes crossing the network


def shuffle_write(data_mb: float, config: Mapping, num_reduce_tasks: int = 1) -> ShuffleCost:
    """Cost of one map task writing ``data_mb`` of shuffle output.

    Small ``spark.shuffle.file.buffer`` values force frequent flushes,
    inflating effective disk traffic; the sort path costs extra CPU unless
    the bypass-merge threshold admits the reduce-partition count.
    """
    if data_mb < 0:
        raise ValueError("data_mb must be non-negative")
    ser = serializer_of(config)
    cpu = data_mb * ser.serialize_s_per_mb
    disk_mb = data_mb
    if config.get("spark.shuffle.compress", True):
        codec = codec_of(config)
        cpu += data_mb * codec.compress_s_per_mb
        disk_mb = data_mb * codec.ratio
    buffer_kb = float(config.get("spark.shuffle.file.buffer", 32))
    flush_overhead = 1.0 + 0.08 * (32.0 / buffer_kb) ** 0.5
    bypass = num_reduce_tasks <= int(
        config.get("spark.shuffle.sort.bypassMergeThreshold", 200)
    )
    if bypass:
        # Hash-style path: no sort CPU, slightly more file overhead.
        flush_overhead *= 1.05
    else:
        cpu += data_mb * 0.0030  # sort-merge pass
    return ShuffleCost(cpu_s=cpu, disk_mb=disk_mb * flush_overhead, net_mb=0.0)


def shuffle_read(data_mb: float, config: Mapping, num_map_tasks: int,
                 remote_fraction: float = 0.875) -> tuple[ShuffleCost, float]:
    """Cost of one reduce task fetching ``data_mb`` of shuffle input.

    Returns ``(cost, fetch_efficiency)``.  ``fetch_efficiency`` in (0, 1]
    models request pipelining: a small ``spark.reducer.maxSizeInFlight``
    under-utilizes the network.  Per-map-output connection setup is
    amortized by ``spark.shuffle.io.numConnectionsPerPeer`` and
    consolidated files.
    """
    if data_mb < 0:
        raise ValueError("data_mb must be non-negative")
    if not 0.0 <= remote_fraction <= 1.0:
        raise ValueError("remote_fraction must be in [0, 1]")
    ser = serializer_of(config)
    cpu = data_mb * ser.deserialize_s_per_mb
    wire_mb = data_mb
    if config.get("spark.shuffle.compress", True):
        codec = codec_of(config)
        cpu += data_mb * codec.decompress_s_per_mb
        wire_mb = data_mb * codec.ratio

    inflight = float(config.get("spark.reducer.maxSizeInFlight", 48))
    fetch_efficiency = min(1.0, (inflight / 48.0) ** 0.35)
    fetch_efficiency = max(fetch_efficiency, 0.35)

    connections = int(config.get("spark.shuffle.io.numConnectionsPerPeer", 1))
    per_block_s = 0.00025 / max(1, connections)
    if config.get("spark.shuffle.consolidateFiles", False):
        per_block_s *= 0.4
    cpu += num_map_tasks * per_block_s

    cost = ShuffleCost(
        cpu_s=cpu,
        disk_mb=wire_mb * (1.0 - remote_fraction),
        net_mb=wire_mb * remote_fraction,
    )
    return cost, fetch_efficiency
