"""DAG compiler: RDD lineage -> physical execution plan of stages.

Reproduces the mechanism of the paper's Fig. 2: "the RDD graph is mapped
into a Directed Acyclic Graph that represents the physical execution plan
of how a job will be split into stages".  Stage boundaries are wide
(shuffle) dependencies; maximal chains of narrow transformations pipeline
into a single stage; lineages below an already-materialized cached RDD
are truncated (Spark reads the cache instead of recomputing ancestors).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

import networkx as nx

from .rdd import RDD, Job

__all__ = [
    "StageProfile",
    "JobPlan",
    "CacheRegistry",
    "compile_job",
    "CompiledStage",
    "CompiledJob",
    "CompiledWorkload",
    "compile_workload",
    "fingerprint_jobs",
]


@dataclass
class StageProfile:
    """Everything the cost model needs to know about one stage."""

    stage_id: int
    name: str
    #: task count; ``None`` means "use spark.default.parallelism"
    num_tasks_hint: int | None
    depends_on: list[int] = field(default_factory=list)
    # data movement (MB, logical/uncompressed)
    input_mb: float = 0.0            # external (HDFS/S3) read
    cached_read_mb: float = 0.0      # read from the block-manager cache
    cached_read_ids: list[int] = field(default_factory=list)
    shuffle_read_mb: float = 0.0
    shuffle_write_mb: float = 0.0
    output_mb: float = 0.0
    collect_mb: float = 0.0          # returned to the driver (actions)
    writes_output: bool = False      # final save to external storage
    # computation
    cpu_s: float = 0.0               # total CPU seconds on a reference core
    record_bytes: float = 100.0
    #: fraction of the in-memory working set that cannot spill (drives OOM)
    unspillable_fraction: float = 0.05
    #: cache materializations this stage performs: (rdd_id, mb, record_bytes)
    materializes: list[tuple[int, float, float]] = field(default_factory=list)
    #: recompute cost of a cache miss of data this stage materializes:
    #: CPU s/MB of the producing chain, and bytes re-read per MB (shuffle
    #: re-fetch or source re-scan) — filled in after compilation
    recompute_cpu_s_per_mb: float = 0.0
    recompute_io_mb_per_mb: float = 0.0

    @property
    def is_shuffle_read(self) -> bool:
        return self.shuffle_read_mb > 0


@dataclass
class JobPlan:
    """Compiled physical plan of one job: stages plus their dependency DAG."""

    job_name: str
    stages: list[StageProfile]

    def graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for s in self.stages:
            g.add_node(s.stage_id, stage=s)
        for s in self.stages:
            for dep in s.depends_on:
                g.add_edge(dep, s.stage_id)
        return g

    def topological(self) -> list[StageProfile]:
        g = self.graph()
        order = list(nx.topological_sort(g))
        by_id = {s.stage_id: s for s in self.stages}
        return [by_id[i] for i in order]

    @property
    def num_stages(self) -> int:
        return len(self.stages)


@dataclass(frozen=True)
class CacheEntry:
    """One materialized cached RDD and the cost of regenerating it."""

    size_mb: float
    record_bytes: float
    recompute_cpu_s_per_mb: float = 0.02
    recompute_io_mb_per_mb: float = 1.0


class CacheRegistry:
    """Materialized cached RDDs, shared across the jobs of an application."""

    def __init__(self):
        self._entries: dict[int, CacheEntry] = {}

    def is_materialized(self, rdd_id: int) -> bool:
        return rdd_id in self._entries

    def materialize(self, rdd_id: int, size_mb: float, record_bytes: float,
                    recompute_cpu_s_per_mb: float = 0.02,
                    recompute_io_mb_per_mb: float = 1.0) -> None:
        self._entries[rdd_id] = CacheEntry(
            size_mb, record_bytes, recompute_cpu_s_per_mb, recompute_io_mb_per_mb
        )

    def evict(self, rdd_id: int) -> None:
        """Unpersist; absent ids are ignored (matches Spark semantics)."""
        self._entries.pop(rdd_id, None)

    def size_mb(self, rdd_id: int) -> float:
        return self._entries[rdd_id].size_mb

    @property
    def total_cached_mb(self) -> float:
        return sum(e.size_mb for e in self._entries.values())

    def mean_recompute_cpu_s_per_mb(self) -> float:
        """Size-weighted mean recompute CPU cost across cached data."""
        total = self.total_cached_mb
        if total <= 0:
            return 0.02
        return sum(
            e.size_mb * e.recompute_cpu_s_per_mb for e in self._entries.values()
        ) / total

    def mean_recompute_io_mb_per_mb(self) -> float:
        """Size-weighted mean bytes re-read per regenerated MB."""
        total = self.total_cached_mb
        if total <= 0:
            return 1.0
        return sum(
            e.size_mb * e.recompute_io_mb_per_mb for e in self._entries.values()
        ) / total

    def entries(self) -> dict[int, CacheEntry]:
        return dict(self._entries)


def compile_job(job: Job, registry: CacheRegistry | None = None,
                first_stage_id: int = 0) -> JobPlan:
    """Cut a job's lineage into stages at shuffle boundaries.

    ``registry`` carries cache state across jobs: a cached RDD that a
    previous job materialized truncates lineage walking; a cached RDD not
    yet materialized is computed by this job and recorded in the stage's
    ``materializes`` list (the simulator commits it to the registry after
    the job succeeds).
    """
    registry = registry or CacheRegistry()
    stages: list[StageProfile] = []
    next_id = [first_stage_id]
    # Map-side stage already built for a given wide RDD within this job.
    built_for: dict[int, int] = {}

    def new_stage(name: str) -> StageProfile:
        s = StageProfile(stage_id=next_id[0], name=name, num_tasks_hint=None)
        next_id[0] += 1
        stages.append(s)
        return s

    def build_stage_producing(rdd: RDD) -> int:
        """Build (or reuse) the stage whose output is ``rdd``'s data.

        Returns the stage id.  For a wide ``rdd`` this is the *reduce*
        stage that starts by reading the shuffle.
        """
        if rdd.id in built_for:
            return built_for[rdd.id]
        stage = new_stage(rdd.op.name)
        built_for[rdd.id] = stage.stage_id
        _fill_chain(stage, rdd)
        return stage.stage_id

    def _fill_chain(stage: StageProfile, rdd: RDD) -> None:
        """Walk narrow parents from ``rdd`` down, accumulating stage costs."""
        stage.output_mb = rdd.size_mb
        stage.num_tasks_hint = rdd.partitions
        stage.record_bytes = rdd.record_bytes
        node: RDD | None = rdd
        while node is not None:
            stage.unspillable_fraction = max(
                stage.unspillable_fraction, node.unspillable_fraction
            )
            if node.cached and registry.is_materialized(node.id) and node is not rdd:
                # Read this prefix from cache instead of recomputing it.
                stage.cached_read_mb += node.size_mb
                stage.cached_read_ids.append(node.id)
                return
            if node.cached and not registry.is_materialized(node.id):
                stage.materializes.append((node.id, node.size_mb, node.record_bytes))

            kind = node.op.kind
            if kind == "source":
                stage.input_mb += node.size_mb
                return
            if kind == "narrow":
                stage.cpu_s += node.op.cpu_s_per_mb * node.input_mb
                node = node.parents[0]
                continue
            # Wide op: its reduce-side work belongs to *this* stage; each
            # parent lineage becomes a separate map-side stage.
            shuffled = node.input_mb * node.op.size_ratio
            stage.shuffle_read_mb += shuffled
            # Reduce-side merge cost over the shuffled bytes.
            stage.cpu_s += 0.5 * node.op.cpu_s_per_mb * shuffled
            for parent in node.parents:
                parent_share = (
                    parent.size_mb / node.input_mb if node.input_mb > 0 else 0.0
                )
                if parent.cached and registry.is_materialized(parent.id):
                    map_stage = new_stage(f"{node.op.name}-map")
                    map_stage.cached_read_mb = parent.size_mb
                    map_stage.cached_read_ids.append(parent.id)
                    map_stage.num_tasks_hint = parent.partitions
                    map_stage.record_bytes = parent.record_bytes
                    map_stage.output_mb = parent.size_mb
                else:
                    map_id = build_stage_producing(parent)
                    map_stage = stages[_index_of(stages, map_id)]
                # Map-side combine/partition/serialize cost over parent data.
                map_stage.cpu_s += node.op.cpu_s_per_mb * parent.size_mb
                map_stage.shuffle_write_mb += shuffled * parent_share
                stage.depends_on.append(map_stage.stage_id)
            return
        raise AssertionError("unreachable")  # pragma: no cover

    final_id = build_stage_producing(job.target)
    final = stages[_index_of(stages, final_id)]
    final.collect_mb = job.result_mb
    final.writes_output = job.writes_output
    for stage in stages:
        if stage.materializes:
            produced = max(1e-9, sum(mb for _, mb, _ in stage.materializes))
            # Regenerating an evicted partition re-runs the producing chain:
            # its CPU, plus a re-read of its inputs (shuffle files persist on
            # executor disks, so post-shuffle recompute re-fetches them).
            stage.recompute_cpu_s_per_mb = stage.cpu_s / produced
            stage.recompute_io_mb_per_mb = (
                stage.input_mb + stage.shuffle_read_mb + stage.cached_read_mb
            ) / produced
    plan = JobPlan(job_name=job.action, stages=stages)
    _check_acyclic(plan)
    return plan


def _index_of(stages: list[StageProfile], stage_id: int) -> int:
    for i, s in enumerate(stages):
        if s.stage_id == stage_id:
            return i
    raise KeyError(stage_id)


def _check_acyclic(plan: JobPlan) -> None:
    if not nx.is_directed_acyclic_graph(plan.graph()):
        raise ValueError(f"job {plan.job_name!r} compiled to a cyclic stage graph")


# --- compiled (config-independent) execution plans ----------------------------
#
# Everything above — lineage walking, stage cutting, topological ordering,
# and the cache-registry evolution across jobs — depends only on the
# workload's job list, never on the configuration under test.  A
# :class:`CompiledWorkload` captures all of it once so candidate
# evaluations (and whole candidate *batches*) skip straight to costing.


@dataclass(frozen=True)
class CompiledStage:
    """One stage in run order plus the cache-registry state it observes.

    ``cached_mb`` and the recompute means are the registry snapshot taken
    *before* the stage runs — exactly what the per-run loop read from its
    live :class:`CacheRegistry`.  The registry's evolution is a pure
    function of the job list (materializations and evictions are declared
    by the compiled stages themselves), so snapshotting at compile time is
    bit-identical to replaying it per run.
    """

    stage: StageProfile
    cached_mb: float
    recompute_cpu_s_per_mb: float
    recompute_io_mb_per_mb: float


@dataclass(frozen=True)
class CompiledJob:
    """One job's physical plan with its stages in execution order."""

    job_name: str
    plan: JobPlan
    stages: tuple[CompiledStage, ...]


@dataclass(frozen=True)
class CompiledWorkload:
    """The full config-independent execution plan of a workload run.

    Plans are immutable once compiled: the simulator and the batch cost
    model only ever read :class:`StageProfile` fields.  All per-run state
    (noise rng, runtime accumulation, slot counts) stays per-candidate.
    """

    name: str
    input_mb: float
    #: content fingerprint of the job list (see :func:`fingerprint_jobs`);
    #: empty for uncached ad-hoc compilations
    fingerprint: str
    jobs: tuple[CompiledJob, ...]

    @property
    def num_stages(self) -> int:
        return sum(len(j.stages) for j in self.jobs)


def fingerprint_jobs(jobs: Sequence[Job]) -> str:
    """Content digest of a job list, independent of global RDD ids.

    RDD ids come from a process-global counter, so two calls to
    ``workload.jobs()`` build structurally identical lineages with
    different ids.  The digest renumbers nodes canonically (parents-first
    DFS order) and hashes every cost-relevant field, so it is equal
    exactly when the compiled plans would be equal — the key that keeps
    two same-named workloads with different job lists from aliasing in
    the simulator's plan cache.
    """
    h = hashlib.blake2b(digest_size=16)
    canonical: dict[int, int] = {}

    def visit(node: RDD) -> int:
        if node.id in canonical:
            return canonical[node.id]
        parent_idx = tuple(visit(p) for p in node.parents)
        idx = len(canonical)
        canonical[node.id] = idx
        h.update(repr((
            idx, parent_idx, node.op.kind, node.op.name, node.op.cpu_s_per_mb,
            node.op.size_ratio, node.input_mb, node.size_mb, node.partitions,
            node.record_bytes, node.cached, node.unspillable_fraction,
        )).encode())
        return idx

    for job in jobs:
        target = visit(job.target)
        unpersist = tuple(visit(r) for r in job.unpersist_after)
        h.update(repr((
            "job", target, job.action, job.result_mb, job.writes_output,
            unpersist,
        )).encode())
    return h.hexdigest()


def compile_workload(name: str, input_mb: float, jobs: Sequence[Job],
                     fingerprint: str = "") -> CompiledWorkload:
    """Compile a job list into an immutable :class:`CompiledWorkload`.

    Replays the exact per-run sequence: each job compiles against the
    registry state left by its predecessors, each stage snapshots the
    registry before running, materializations commit after each stage,
    and unpersists apply after each job.
    """
    registry = CacheRegistry()
    compiled_jobs: list[CompiledJob] = []
    next_stage_id = 0
    for job in jobs:
        plan = compile_job(job, registry, first_stage_id=next_stage_id)
        next_stage_id += plan.num_stages
        steps: list[CompiledStage] = []
        for stage in plan.topological():
            steps.append(CompiledStage(
                stage=stage,
                cached_mb=registry.total_cached_mb,
                recompute_cpu_s_per_mb=registry.mean_recompute_cpu_s_per_mb(),
                recompute_io_mb_per_mb=registry.mean_recompute_io_mb_per_mb(),
            ))
            for rdd_id, mb, record_bytes in stage.materializes:
                registry.materialize(
                    rdd_id, mb, record_bytes,
                    recompute_cpu_s_per_mb=stage.recompute_cpu_s_per_mb,
                    recompute_io_mb_per_mb=stage.recompute_io_mb_per_mb,
                )
        for rdd in job.unpersist_after:
            registry.evict(rdd.id)
        compiled_jobs.append(CompiledJob(plan.job_name, plan, tuple(steps)))
    return CompiledWorkload(
        name=name, input_mb=float(input_mb), fingerprint=fingerprint,
        jobs=tuple(compiled_jobs),
    )
