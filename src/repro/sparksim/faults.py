"""Deterministic fault injection for the Spark simulator.

Section IV of the paper motivates the whole provider-side vision with the
cost of failure: "any failed test execution is expensive and has a long
fix-execute-debug cycle".  A tuning service that only ever sees clean
executions is untested exactly where it matters, so this module makes
failure a first-class, *reproducible* input: a :class:`FaultPlan` attached
to a :class:`~repro.sparksim.simulator.SparkSimulator` decides, as a pure
function of the plan and the execution's noise seed, which faults strike
a given run.

Determinism contract: :meth:`FaultPlan.draw` uses its own generator
derived from ``(salt, seed)`` — it never touches the simulator's noise
stream — so (a) the same request always experiences the same faults, no
matter which process or executor evaluates it (fault scenarios are
cacheable under the engine's seed-keyed memoization), and (b) a plan
whose faults do not fire leaves the execution bit-identical to a run
with no plan at all.

Two fault families:

* **Simulated faults** change the :class:`ExecutionResult` itself and are
  applied inside the simulator: ``executor_loss`` (a fraction of
  executors die mid-run; in-flight work re-runs and the remaining stages
  run on fewer slots), ``straggler`` (one stage's tasks slow down),
  ``oom_kill`` (the application is killed at a stage, a failed run), and
  ``env_spike`` (a transient interference burst multiplies the
  environment factors for this run only).
* **Infrastructure faults** attack the harness, not the result:
  ``worker_crash`` makes an evaluation-engine *pool worker* die hard
  (``os._exit``) on the first attempt, exercising the retry path in
  :mod:`repro.engine.retry`.  Serial execution ignores it, and retries
  carry ``attempt > 0``, so the recovered result is bit-identical to a
  fault-free run — the property the engine's recovery tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from ..cloud.interference import Environment

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultDraw",
    "FaultPlan",
    "executor_loss",
    "straggler",
    "oom_kill",
    "env_spike",
    "worker_crash",
]

FAULT_KINDS = ("executor_loss", "straggler", "oom_kill", "env_spike", "worker_crash")

_SEED_MASK = 2**63 - 1


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: what strikes, how often, how hard.

    ``severity`` is interpreted per kind: fraction of executors lost
    (``executor_loss``), task slowdown factor (``straggler``), or the
    multiplier on the interference factors (``env_spike``); it is unused
    for ``oom_kill`` and ``worker_crash``.  ``span`` is the number of
    leading stage ordinals a stage-targeted fault may strike (the stage
    is drawn uniformly from ``[0, span)``); the default of 1 pins the
    fault to the first stage, which keeps single-fault scenarios exactly
    reproducible across workloads with different stage counts.
    """

    kind: str
    probability: float
    severity: float = 1.0
    span: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.severity <= 0.0:
            raise ValueError("severity must be positive")
        if self.kind == "executor_loss" and not self.severity < 1.0:
            raise ValueError("executor_loss severity is a fraction in (0, 1)")
        if self.kind in ("straggler", "env_spike") and self.severity < 1.0:
            raise ValueError(f"{self.kind} severity is a slowdown factor >= 1.0")
        if self.span < 1:
            raise ValueError("span must be >= 1")


@dataclass(frozen=True)
class FaultDraw:
    """The faults that strike one execution (pure function of plan + seed)."""

    loss_fraction: float = 0.0       # fraction of executors lost...
    loss_stage: int = -1             # ...at this stage ordinal (-1 = none)
    straggler_factor: float = 1.0    # task slowdown on...
    straggler_stage: int = -1        # ...this stage ordinal (-1 = none)
    oom_stage: int = -1              # application killed here (-1 = none)
    env_multiplier: float = 1.0      # transient interference spike
    crash_worker: bool = False       # pool worker dies on first attempt

    @property
    def any(self) -> bool:
        return (
            self.loss_stage >= 0
            or self.straggler_stage >= 0
            or self.oom_stage >= 0
            or self.env_multiplier > 1.0
            or self.crash_worker
        )

    def spike_env(self, env: Environment) -> Environment:
        """Apply the transient interference spike to ``env`` (or pass through)."""
        if self.env_multiplier <= 1.0:
            return env
        from ..cloud.interference import Environment

        return Environment(
            cpu_factor=env.cpu_factor * self.env_multiplier,
            disk_factor=env.disk_factor * self.env_multiplier,
            network_factor=env.network_factor * self.env_multiplier,
        )


#: the no-fault draw, shared so fault-free paths allocate nothing
NO_FAULTS = FaultDraw()


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault specs plus the salt that keys their draws.

    Frozen and hashable, so a plan travels through pickled process-pool
    initializers unchanged, and two simulators built from the same plan
    inject identical faults for identical seeds.  When several specs
    share a kind, the later spec's draw wins.
    """

    specs: tuple[FaultSpec, ...] = ()
    salt: int = 0xFA17

    def __post_init__(self) -> None:
        # Tolerate list input; the field must be hashable.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def of(cls, *specs: FaultSpec, salt: int = 0xFA17) -> "FaultPlan":
        return cls(specs=tuple(specs), salt=salt)

    def draw(self, seed: int) -> FaultDraw:
        """Decide which faults strike the execution seeded with ``seed``.

        Every spec consumes a fixed number of random draws whether or not
        it fires, so one spec's outcome never shifts another's stream.
        """
        if not self.specs:
            return NO_FAULTS
        rng = np.random.default_rng([self.salt & _SEED_MASK, seed & _SEED_MASK])
        fields = {}
        for spec in self.specs:
            fired = float(rng.random()) < spec.probability
            stage = int(rng.integers(0, spec.span))
            if not fired:
                continue
            if spec.kind == "executor_loss":
                fields["loss_fraction"] = spec.severity
                fields["loss_stage"] = stage
            elif spec.kind == "straggler":
                fields["straggler_factor"] = spec.severity
                fields["straggler_stage"] = stage
            elif spec.kind == "oom_kill":
                fields["oom_stage"] = stage
            elif spec.kind == "env_spike":
                fields["env_multiplier"] = spec.severity
            elif spec.kind == "worker_crash":
                fields["crash_worker"] = True
        if not fields:
            return NO_FAULTS
        return FaultDraw(**fields)


# --- spec factories (the readable way to build plans) ------------------------

def executor_loss(probability: float, fraction: float = 0.5,
                  span: int = 1) -> FaultSpec:
    """Lose ``fraction`` of the executors at a drawn stage; the run survives."""
    return FaultSpec("executor_loss", probability, severity=fraction, span=span)


def straggler(probability: float, slowdown: float = 3.0,
              span: int = 1) -> FaultSpec:
    """Slow one stage's tasks by ``slowdown`` (a slow node / hot neighbour)."""
    return FaultSpec("straggler", probability, severity=slowdown, span=span)


def oom_kill(probability: float, span: int = 1) -> FaultSpec:
    """Kill the application at a drawn stage: a failed, wasted execution."""
    return FaultSpec("oom_kill", probability, span=span)


def env_spike(probability: float, multiplier: float = 1.5) -> FaultSpec:
    """Transient interference burst multiplying all environment factors."""
    return FaultSpec("env_spike", probability, severity=multiplier)


def worker_crash(probability: float) -> FaultSpec:
    """Hard-kill the pool worker evaluating the request (first attempt only)."""
    return FaultSpec("worker_crash", probability)
