"""Spark history-server-style event logs.

Real providers mine Spark event logs, not Python objects; this module
serializes an :class:`~repro.sparksim.metrics.ExecutionResult` into a
JSON-lines event log shaped after Spark's (`SparkListenerApplicationStart`,
`SparkListenerStageCompleted`, ...) and parses it back, so the
characterization pipeline can run from logs alone.
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import ExecutionResult, StageMetrics, TaskMetrics

__all__ = ["write_event_log", "read_event_log", "event_lines"]


def event_lines(result: ExecutionResult) -> list[str]:
    """Render the execution as JSON-lines events."""
    events: list[dict] = [{
        "Event": "SparkListenerApplicationStart",
        "App Name": result.workload,
        "Input MB": result.input_mb,
        "Executors Granted": result.executors_granted,
        "Executors Requested": result.executors_requested,
        "Total Slots": result.total_slots,
        "Environment Factor": result.environment_factor,
    }]
    for s in result.stages:
        stage_event = {
            "Event": "SparkListenerStageCompleted",
            "Stage Info": {
                "Stage ID": s.stage_id,
                "Stage Name": s.name,
                "Number of Tasks": s.num_tasks,
                "Duration": s.duration_s,
                "Failed": s.failed,
                "Input MB": s.input_mb,
                "Cached Read MB": s.cached_read_mb,
                "Shuffle Read MB": s.shuffle_read_mb,
                "Shuffle Write MB": s.shuffle_write_mb,
                "Spill MB": s.spill_mb,
                "Output MB": s.output_mb,
                "Writes Output": s.writes_output,
                "Executor CPU Time": s.cpu_time_s,
                "JVM GC Time": s.gc_time_s,
                "Disk Time": s.io_time_s,
                "Network Time": s.net_time_s,
            },
        }
        if s.task_metrics is not None:
            stage_event["Task Metrics"] = {
                "Count": s.task_metrics.count,
                "Mean": s.task_metrics.mean_s,
                "P50": s.task_metrics.p50_s,
                "P95": s.task_metrics.p95_s,
                "Max": s.task_metrics.max_s,
            }
        events.append(stage_event)
    events.append({
        "Event": "SparkListenerApplicationEnd",
        "Runtime": result.runtime_s,
        "Success": result.success,
        "Failure Reason": result.failure_reason,
    })
    return [json.dumps(e) for e in events]


def write_event_log(result: ExecutionResult, path: str | Path) -> None:
    """Write the execution's event log to ``path`` (JSON lines)."""
    Path(path).write_text("\n".join(event_lines(result)) + "\n")


def read_event_log(path: str | Path) -> ExecutionResult:
    """Parse an event log back into an :class:`ExecutionResult`."""
    lines = [json.loads(line) for line in Path(path).read_text().splitlines() if line]
    start = next(e for e in lines if e["Event"] == "SparkListenerApplicationStart")
    end = next(e for e in lines if e["Event"] == "SparkListenerApplicationEnd")
    stages = []
    for e in lines:
        if e["Event"] != "SparkListenerStageCompleted":
            continue
        info = e["Stage Info"]
        tm = e.get("Task Metrics")
        stages.append(StageMetrics(
            stage_id=int(info["Stage ID"]),
            name=str(info["Stage Name"]),
            num_tasks=int(info["Number of Tasks"]),
            duration_s=float(info["Duration"]),
            input_mb=float(info["Input MB"]),
            cached_read_mb=float(info["Cached Read MB"]),
            shuffle_read_mb=float(info["Shuffle Read MB"]),
            shuffle_write_mb=float(info["Shuffle Write MB"]),
            spill_mb=float(info["Spill MB"]),
            cpu_time_s=float(info["Executor CPU Time"]),
            gc_time_s=float(info["JVM GC Time"]),
            io_time_s=float(info["Disk Time"]),
            net_time_s=float(info["Network Time"]),
            task_metrics=TaskMetrics(
                count=int(tm["Count"]), mean_s=float(tm["Mean"]),
                p50_s=float(tm["P50"]), p95_s=float(tm["P95"]),
                max_s=float(tm["Max"]),
            ) if tm else None,
            failed=bool(info["Failed"]),
            output_mb=float(info["Output MB"]),
            writes_output=bool(info["Writes Output"]),
        ))
    return ExecutionResult(
        workload=str(start["App Name"]),
        input_mb=float(start["Input MB"]),
        runtime_s=float(end["Runtime"]),
        success=bool(end["Success"]),
        stages=stages,
        executors_granted=int(start["Executors Granted"]),
        executors_requested=int(start["Executors Requested"]),
        total_slots=int(start["Total Slots"]),
        failure_reason=end.get("Failure Reason"),
        environment_factor=float(start["Environment Factor"]),
    )
