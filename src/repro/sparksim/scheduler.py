"""Task scheduler: slot occupancy, noise, stragglers, speculation.

Turns a deterministic per-task cost into a stage makespan by list-
scheduling noisy task durations onto the granted executor slots, with a
heavy-tailed straggler model and optional speculative execution
(``spark.speculation``) that relaunches outliers at the cost of duplicate
work — the classic tail-vs-waste trade-off.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .costmodel import Calibration
from .metrics import TaskMetrics

__all__ = ["StageSchedule", "schedule_stage"]


@dataclass(frozen=True)
class StageSchedule:
    """Outcome of scheduling one stage."""

    makespan_s: float
    task_metrics: TaskMetrics
    speculated_tasks: int
    wasted_task_seconds: float


def _sample_durations(n_tasks: int, base_task_s: float, rng: np.random.Generator,
                      calib: Calibration) -> np.ndarray:
    sigma = calib.task_noise_sigma
    durations = base_task_s * rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_tasks)
    stragglers = rng.random(n_tasks) < calib.straggler_probability
    if stragglers.any():
        mult = 1.0 + rng.exponential(
            calib.straggler_mean_multiplier - 1.0, size=int(stragglers.sum())
        )
        durations[stragglers] *= mult
    return durations


def _apply_speculation(durations: np.ndarray, config: Mapping) -> tuple[np.ndarray, int, float]:
    """Clamp the straggler tail as speculative copies overtake originals."""
    median = float(np.median(durations))
    multiplier = float(config.get("spark.speculation.multiplier", 1.5))
    quantile = float(config.get("spark.speculation.quantile", 0.75))
    threshold = median * max(1.01, multiplier)
    # Speculation only monitors once `quantile` of tasks completed; tasks
    # below that completion point are never candidates.
    cutoff = float(np.quantile(durations, quantile))
    candidates = durations > max(threshold, cutoff)
    n_spec = int(candidates.sum())
    if n_spec == 0:
        return durations, 0, 0.0
    clamped = durations.copy()
    # The speculative copy starts at the threshold and runs a fresh median
    # duration; the task finishes at whichever copy is first.
    finish_with_copy = threshold + median
    clamped[candidates] = np.minimum(clamped[candidates], finish_with_copy)
    wasted = float(n_spec * median)  # duplicate occupancy
    return clamped, n_spec, wasted


def schedule_stage(n_tasks: int, base_task_s: float, slots: int,
                   config: Mapping, rng: np.random.Generator,
                   calib: Calibration | None = None,
                   noise: bool = True) -> StageSchedule:
    """List-schedule ``n_tasks`` noisy tasks onto ``slots`` slots."""
    if calib is None:
        calib = Calibration()
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if slots < 1:
        raise ValueError("slots must be >= 1")
    if base_task_s < 0:
        raise ValueError("base_task_s must be non-negative")

    if noise:
        durations = _sample_durations(n_tasks, base_task_s, rng, calib)
    else:
        durations = np.full(n_tasks, base_task_s)

    speculated, wasted = 0, 0.0
    if config.get("spark.speculation", False) and noise and n_tasks >= 4:
        durations, speculated, wasted = _apply_speculation(durations, config)
        # Duplicate copies occupy slots: model as extra tasks of median size.
        if speculated:
            extra = np.full(speculated, float(np.median(durations)) * 0.5)
            durations = np.concatenate([durations, extra])

    makespan = _list_schedule(durations, slots)
    real = durations[:n_tasks]
    metrics = TaskMetrics(
        count=n_tasks,
        mean_s=float(real.mean()),
        p50_s=float(np.median(real)),
        p95_s=float(np.quantile(real, 0.95)),
        max_s=float(real.max()),
    )
    return StageSchedule(
        makespan_s=float(makespan),
        task_metrics=metrics,
        speculated_tasks=speculated,
        wasted_task_seconds=wasted,
    )


def _list_schedule_heap(durations: np.ndarray, slots: int) -> float:
    """Greedy earliest-available-slot assignment (what Spark's FIFO does).

    Reference implementation; kept as the oracle for the equivalence
    property test of :func:`_list_schedule`.
    """
    n = len(durations)
    if n <= slots:
        return float(durations.max())
    heap = [0.0] * slots
    heapq.heapify(heap)
    for d in durations:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + float(d))
    return max(heap)


#: below this many slots the numpy chunk bookkeeping costs more than the
#: plain heap loop it replaces
_MIN_VECTOR_SLOTS = 20

#: chunks shorter than this are processed with the heap (numpy call
#: overhead dominates tiny chunks)
_MIN_CHUNK = 8


def _list_schedule(durations: np.ndarray, slots: int) -> float:
    """Exact chunked/vectorized equivalent of :func:`_list_schedule_heap`.

    The greedy schedule pops the minimum slot time once per task — a
    Python-level loop that dominates simulator time at high
    ``spark.default.parallelism``.  This version assigns tasks in chunks:
    with slot times sorted ascending, the next ``m`` pops are exactly
    ``times[0..m-1]`` (in order) as long as no finish pushed during the
    chunk undercuts a later pop, i.e. while
    ``times[j] <= min_{i<j}(times[i] + d_i)``.  The longest such prefix
    is found with one vectorized prefix-min, the whole chunk is assigned
    with one vectorized add, and the slot array is re-sorted.  Stragglers
    merely shorten the chunk (their slot stays un-popped at the tail);
    degenerate chunks fall back to the heap loop, so the result is
    bit-identical to the reference for every input.
    """
    n = len(durations)
    if n <= slots:
        return float(durations.max())
    durations = np.asarray(durations, dtype=float)
    if slots < _MIN_VECTOR_SLOTS:
        return _list_schedule_heap(durations, slots)
    times = np.zeros(slots)  # slot available-times, kept sorted ascending
    pos = 0
    while pos < n:
        k = min(slots, n - pos)
        chunk = durations[pos:pos + k]
        # Longest safe prefix: times[j] must not exceed any finish pushed
        # earlier in the chunk (prefix-min of times[i] + d_i).
        finishes = times[:k] + chunk
        prefix_min = np.minimum.accumulate(finishes)
        unsafe = times[1:k] > prefix_min[: k - 1]
        j = int(unsafe.argmax()) if k > 1 else 0
        m = j + 1 if k > 1 and unsafe[j] else k
        if m >= _MIN_CHUNK:
            # The m popped slots finish at times[:m] + chunk[:m]; writing
            # them back in place and re-sorting realizes the new multiset.
            times[:m] = finishes[:m]
            times.sort()
        else:
            m = min(k, _MIN_CHUNK)
            heap = times.tolist()
            heapq.heapify(heap)
            for d in chunk[:m]:
                t = heapq.heappop(heap)
                heapq.heappush(heap, t + float(d))
            times = np.sort(heap)
        pos += m
    return float(times[-1])
