"""Task scheduler: slot occupancy, noise, stragglers, speculation.

Turns a deterministic per-task cost into a stage makespan by list-
scheduling noisy task durations onto the granted executor slots, with a
heavy-tailed straggler model and optional speculative execution
(``spark.speculation``) that relaunches outliers at the cost of duplicate
work — the classic tail-vs-waste trade-off.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .costmodel import Calibration
from .metrics import TaskMetrics

__all__ = ["StageSchedule", "schedule_stage", "schedule_stage_batch"]


@dataclass(frozen=True)
class StageSchedule:
    """Outcome of scheduling one stage."""

    makespan_s: float
    task_metrics: TaskMetrics
    speculated_tasks: int
    wasted_task_seconds: float


def _sample_durations(n_tasks: int, base_task_s: float, rng: np.random.Generator,
                      calib: Calibration) -> np.ndarray:
    sigma = calib.task_noise_sigma
    durations = base_task_s * rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_tasks)
    stragglers = rng.random(n_tasks) < calib.straggler_probability
    n_straggle = int(stragglers.sum())
    if n_straggle:
        mult = 1.0 + rng.exponential(
            calib.straggler_mean_multiplier - 1.0, size=n_straggle,
        )
        durations[stragglers] *= mult
    return durations


def _apply_speculation(durations: np.ndarray, config: Mapping) -> tuple[np.ndarray, int, float]:
    """Clamp the straggler tail as speculative copies overtake originals."""
    median = float(np.median(durations))
    multiplier = float(config.get("spark.speculation.multiplier", 1.5))
    quantile = float(config.get("spark.speculation.quantile", 0.75))
    threshold = median * max(1.01, multiplier)
    # Speculation only monitors once `quantile` of tasks completed; tasks
    # below that completion point are never candidates.
    cutoff = float(np.quantile(durations, quantile))
    candidates = durations > max(threshold, cutoff)
    n_spec = int(candidates.sum())
    if n_spec == 0:
        return durations, 0, 0.0
    clamped = durations.copy()
    # The speculative copy starts at the threshold and runs a fresh median
    # duration; the task finishes at whichever copy is first.
    finish_with_copy = threshold + median
    clamped[candidates] = np.minimum(clamped[candidates], finish_with_copy)
    wasted = float(n_spec * median)  # duplicate occupancy
    return clamped, n_spec, wasted


def schedule_stage(n_tasks: int, base_task_s: float, slots: int,
                   config: Mapping, rng: np.random.Generator,
                   calib: Calibration | None = None,
                   noise: bool = True) -> StageSchedule:
    """List-schedule ``n_tasks`` noisy tasks onto ``slots`` slots."""
    if calib is None:
        calib = Calibration()
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    if slots < 1:
        raise ValueError("slots must be >= 1")
    if base_task_s < 0:
        raise ValueError("base_task_s must be non-negative")

    if noise:
        durations = _sample_durations(n_tasks, base_task_s, rng, calib)
    else:
        durations = np.full(n_tasks, base_task_s)

    speculated, wasted = 0, 0.0
    if config.get("spark.speculation", False) and noise and n_tasks >= 4:
        durations, speculated, wasted = _apply_speculation(durations, config)
        # Duplicate copies occupy slots: model as extra tasks of median size.
        if speculated:
            extra = np.full(speculated, float(np.median(durations)) * 0.5)
            durations = np.concatenate([durations, extra])

    makespan = _list_schedule(durations, slots)
    real = durations[:n_tasks]
    metrics = TaskMetrics(
        count=n_tasks,
        mean_s=float(real.sum() / real.size),
        p50_s=float(np.median(real)),
        p95_s=float(np.quantile(real, 0.95)),
        max_s=float(real.max()),
    )
    return StageSchedule(
        makespan_s=float(makespan),
        task_metrics=metrics,
        speculated_tasks=speculated,
        wasted_task_seconds=wasted,
    )


def _list_schedule_heap(durations: np.ndarray, slots: int) -> float:
    """Greedy earliest-available-slot assignment (what Spark's FIFO does).

    Reference implementation; kept as the oracle for the equivalence
    property test of :func:`_list_schedule`.
    """
    n = len(durations)
    if n <= slots:
        return float(durations.max())
    # [0.0] * slots is already a valid heap; peek + heapreplace is one C
    # call per task instead of a pop/push pair, and iterating the
    # ``tolist()`` floats skips per-element numpy-scalar unboxing.  The
    # slot multiset evolves identically either way (each step removes
    # the minimum value and inserts minimum + d), so the final makespan
    # is bit-identical.
    heap = [0.0] * slots
    heapreplace = heapq.heapreplace
    for d in durations.tolist():
        heapreplace(heap, heap[0] + d)
    return max(heap)


#: below this many slots the numpy chunk bookkeeping costs more than the
#: plain heap loop it replaces.  The crossover is measured by the
#: scheduler microbench (BENCH_throughput.json) on durations drawn from
#: the production noise model (``_sample_durations`` at the default
#: calibration): parity at 48 slots, vectorized ~1.35x/2.8x/5x faster
#: at 64/128/256, heap ~1.4x faster at 32.  Wider duration spreads
#: shorten the safe prefix and move the crossover up — the microbench
#: asserts the chosen path is never >1.5x slower than the rejected one.
_MIN_VECTOR_SLOTS = 48

#: chunks shorter than this are processed with the heap (numpy call
#: overhead dominates tiny chunks)
_MIN_CHUNK = 8


def _list_schedule(durations: np.ndarray, slots: int) -> float:
    """Exact chunked/vectorized equivalent of :func:`_list_schedule_heap`.

    The greedy schedule pops the minimum slot time once per task — a
    Python-level loop that dominates simulator time at high
    ``spark.default.parallelism``.  This version assigns tasks in chunks:
    with slot times sorted ascending, the next ``m`` pops are exactly
    ``times[0..m-1]`` (in order) as long as no finish pushed during the
    chunk undercuts a later pop, i.e. while
    ``times[j] <= min_{i<j}(times[i] + d_i)``.  The longest such prefix
    is found with one vectorized prefix-min, the whole chunk is assigned
    with one vectorized add, and the slot array is re-sorted.  Stragglers
    merely shorten the chunk (their slot stays un-popped at the tail);
    degenerate chunks fall back to the heap loop, so the result is
    bit-identical to the reference for every input.
    """
    n = len(durations)
    if n <= slots:
        return float(durations.max())
    durations = np.asarray(durations, dtype=float)
    if slots < _MIN_VECTOR_SLOTS:
        return _list_schedule_heap(durations, slots)
    times = np.zeros(slots)  # slot available-times, kept sorted ascending
    pos = 0
    # Fast-rounds prologue: while every chunk is a full round of exactly
    # ``slots`` tasks and the safety test passes, the per-round work is
    # just an in-place add and re-sort.  All round minima come from one
    # (rounds, slots) reduction, and the reshape pins chunk boundaries —
    # the first unsafe round breaks to the general loop below, which
    # re-derives boundaries from ``pos`` and never returns here.
    rounds = n // slots
    if rounds >= 2:
        mat = durations[: rounds * slots].reshape(rounds, slots)
        mins = mat.min(axis=1).tolist()
        last = slots - 1
        r = 0
        while r < rounds and times[last] - times[0] <= mins[r]:
            np.add(times, mat[r], out=times)
            times.sort()
            r += 1
        pos = r * slots
    while pos < n:
        k = min(slots, n - pos)
        chunk = durations[pos:pos + k]
        cmin = chunk.min()
        # Fast test first: when the chunk's shortest task covers the slot
        # spread, every pop is safe (times[j] <= times[0] + min d <=
        # times[i] + d_i for all i < j) — the common case for the tight
        # task-noise distributions the simulator draws.
        if times[k - 1] - times[0] <= cmin:
            m = k
        else:
            # Slots at or below times[0] + cmin can only be popped before
            # any in-chunk finish lands (every push is >= times[0] + cmin),
            # so the first such-prefix pops are exactly times[:m] in order.
            # Straggler-inflated slots sit past the cut and stay parked —
            # one binary search instead of a prefix-min scan per chunk.
            m = min(int(np.searchsorted(times, times[0] + cmin, "right")), k)
        if m >= _MIN_CHUNK:
            # The m popped slots finish at times[:m] + chunk[:m]; adding
            # in place and re-sorting realizes the new multiset.
            np.add(times[:m], chunk[:m], out=times[:m])
            times.sort()
        else:
            m = min(k, _MIN_CHUNK)
            heap = times.tolist()
            heapq.heapify(heap)
            heapreplace = heapq.heapreplace
            for d in chunk[:m].tolist():
                heapreplace(heap, heap[0] + d)
            times = np.sort(heap)
        pos += m
    return float(times[-1])


def _median_1d(x: np.ndarray) -> float:
    """``float(np.median(x))`` for 1-D float arrays, minus the dispatch.

    ``np.median`` spends most of its time in ``_ureduce`` axis machinery
    — dozens of microseconds per call on the tiny per-stage arrays the
    simulator reduces.  Selecting the middle element(s) with a direct
    ``np.partition`` is bit-identical (numpy's own implementation does
    exactly this before averaging) at a fraction of the overhead.
    """
    n = x.size
    h = n // 2
    part = x.copy()
    if n % 2:
        part.partition(h)
        return float(part[h])
    part.partition((h - 1, h))
    return float((part[h - 1] + part[h]) / 2.0)


def _quantile_1d(x: np.ndarray, q: float) -> float:
    """``float(np.quantile(x, q))`` (linear method) without the dispatch.

    Replicates numpy's virtual-index + lerp arithmetic exactly —
    including the ``gamma >= 0.5`` symmetric-lerp branch — so results
    are bit-identical to ``np.quantile`` for 1-D float input.
    """
    n = x.size
    vi = q * (n - 1)
    part = x.copy()
    if vi >= n - 1:
        part.partition(n - 1)
        return float(part[n - 1])
    lo = math.floor(vi)
    g = vi - lo
    part.partition((lo, lo + 1))
    a = part[lo]
    b = part[lo + 1]
    diff = b - a
    if g >= 0.5:
        return float(b - diff * (1 - g))
    return float(a + diff * g)


def _median_quantile_1d(x: np.ndarray, q: float) -> tuple[float, float]:
    """``(np.median(x), np.quantile(x, q))`` from one shared partition.

    ``np.partition`` with several kth indices places the sorted-order
    element at every requested position, so the median and quantile read
    the exact values the separate calls would — one array copy and one
    selection pass instead of two.
    """
    n = x.size
    h = n // 2
    vi = q * (n - 1)
    at_end = vi >= n - 1
    if at_end:
        lo = n - 1
        q_kth = (n - 1,)
    else:
        lo = math.floor(vi)
        q_kth = (lo, lo + 1)
    part = x.copy()
    if n % 2:
        part.partition((h,) + q_kth)
        median = float(part[h])
    else:
        part.partition((h - 1, h) + q_kth)
        median = float((part[h - 1] + part[h]) / 2.0)
    if at_end:
        return median, float(part[n - 1])
    g = vi - lo
    a = part[lo]
    b = part[lo + 1]
    diff = b - a
    if g >= 0.5:
        return median, float(b - diff * (1 - g))
    return median, float(a + diff * g)


def schedule_stage_batch(n_tasks: np.ndarray, base_task_s: np.ndarray,
                         slots: np.ndarray, spec_enabled: np.ndarray,
                         spec_multiplier: np.ndarray, spec_quantile: np.ndarray,
                         rngs: Sequence[np.random.Generator],
                         calib: Calibration | None = None,
                         noise: bool = True) -> list[StageSchedule]:
    """Schedule one stage for N candidates; bit-identical to a loop of
    :func:`schedule_stage`.

    Every input is a per-candidate array (``rngs`` a list of generators,
    one stream per candidate), and sampling stays per-candidate — each
    rng must consume exactly the draws the scalar path would.  The cost
    the batch path eliminates is the reduction dispatch: candidates tune
    ``spark.default.parallelism``, so per-stage duration arrays differ in
    length and cannot stack into one matrix; instead the median/quantile
    calls that dominate scalar scheduling are answered by
    :func:`_median_1d` / :func:`_quantile_1d`, partition-based replicas
    with ~5-13x less per-call overhead and bitwise-equal results.
    """
    if calib is None:
        calib = Calibration()
    m = len(rngs)
    # One bulk tolist() per input instead of m numpy-scalar unboxings.
    n_list = np.asarray(n_tasks).tolist()
    base_list = np.asarray(base_task_s, dtype=float).tolist()
    slots_list = np.asarray(slots).tolist()
    spec_list = np.asarray(spec_enabled).tolist()
    mult_list = np.asarray(spec_multiplier, dtype=float).tolist()
    q_list = np.asarray(spec_quantile, dtype=float).tolist()
    schedules: list[StageSchedule] = []
    for i in range(m):
        n_i = int(n_list[i])
        if n_i < 1:
            raise ValueError("n_tasks must be >= 1")
        slots_i = int(slots_list[i])
        if slots_i < 1:
            raise ValueError("slots must be >= 1")
        base_i = base_list[i]
        if base_i < 0:
            raise ValueError("base_task_s must be non-negative")
        if noise:
            durations = _sample_durations(n_i, base_i, rngs[i], calib)
        else:
            durations = np.full(n_i, base_i)

        speculated, wasted = 0, 0.0
        if spec_list[i] and noise and n_i >= 4:
            median, cutoff = _median_quantile_1d(durations, q_list[i])
            threshold = median * max(1.01, mult_list[i])
            candidates = durations > max(threshold, cutoff)
            speculated = int(candidates.sum())
            if speculated:
                clamped = durations.copy()
                finish_with_copy = threshold + median
                clamped[candidates] = np.minimum(
                    clamped[candidates], finish_with_copy,
                )
                wasted = float(speculated * median)
                extra = np.full(speculated, _median_1d(clamped) * 0.5)
                durations = np.concatenate([clamped, extra])

        makespan = _list_schedule(durations, slots_i)
        real = durations[:n_i]
        p50, p95 = _median_quantile_1d(real, 0.95)
        metrics = TaskMetrics(
            count=n_i,
            mean_s=float(real.sum() / real.size),
            p50_s=p50,
            p95_s=p95,
            max_s=float(real.max()),
        )
        schedules.append(StageSchedule(
            makespan_s=float(makespan),
            task_metrics=metrics,
            speculated_tasks=speculated,
            wasted_task_seconds=wasted,
        ))
    return schedules
