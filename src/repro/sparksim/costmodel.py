"""Analytic per-task cost model.

Given one stage, a configuration, a cluster and the cache state, compute
the deterministic cost components of a single task (CPU, disk, network,
GC) plus stage-level driver overheads.  The scheduler then turns these
into a makespan by simulating slot occupancy with noise and stragglers.

Every empirical constant lives in :class:`Calibration` so ablation
benches can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ..cloud.cluster import Cluster
from ..cloud.interference import Environment
from ..config.constraints import ResourceGrant
from .dag import StageProfile
from .executor import RESERVED_MB, ExecutorModel
from .memory import CachePlan, gc_fraction, spill_outcome
from .shuffle import codec_of, serializer_of, shuffle_read, shuffle_write

__all__ = ["Calibration", "TaskCost", "StageCost", "compute_stage_cost"]


@dataclass(frozen=True)
class Calibration:
    """Empirical constants of the cost model (ablation knobs)."""

    task_launch_s: float = 0.012          # JVM task deserialize + start
    driver_dispatch_s_per_task: float = 0.0012
    driver_stage_overhead_s: float = 0.045
    app_startup_base_s: float = 1.2       # driver + executor launch
    app_startup_per_executor_s: float = 0.02
    job_submit_s: float = 0.08
    collect_s_per_mb: float = 0.02
    cached_read_mb_s: float = 1800.0      # memory-bandwidth-bound cache scan
    #: fixed per-MB overhead of a cache-miss recompute (task re-dispatch,
    #: block-manager bookkeeping) on top of the lineage-derived cost
    recompute_cpu_s_per_mb: float = 0.012
    spill_merge_cpu_s_per_mb: float = 0.004
    straggler_probability: float = 0.025
    straggler_mean_multiplier: float = 2.2
    task_noise_sigma: float = 0.08
    run_noise_sigma: float = 0.03
    #: map-stage working sets are pipelined; only a fraction is resident
    map_working_set_fraction: float = 0.35
    shuffle_write_buffer_fraction: float = 0.5
    min_parallelism_efficiency: float = 0.05


@dataclass(frozen=True)
class TaskCost:
    """Deterministic cost components of one task of a stage."""

    cpu_s: float
    disk_s: float
    net_s: float
    gc_s: float
    launch_s: float
    idle_s: float            # locality-wait scheduling idle
    spilled_mb: float
    oom: bool

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.disk_s + self.net_s + self.gc_s + self.launch_s + self.idle_s


@dataclass(frozen=True)
class StageCost:
    """Per-stage cost: one representative task plus driver-side overheads."""

    stage: StageProfile
    num_tasks: int
    task: TaskCost
    driver_s: float
    # observable byte counters for metrics
    input_mb: float
    cached_read_mb: float
    shuffle_read_mb: float
    shuffle_write_mb: float
    spill_mb_total: float


def resolve_num_tasks(stage: StageProfile, config: Mapping) -> int:
    if stage.num_tasks_hint is not None:
        return max(1, int(stage.num_tasks_hint))
    return max(1, int(config["spark.default.parallelism"]))


def compute_stage_cost(
    stage: StageProfile,
    config: Mapping,
    cluster: Cluster,
    grant: ResourceGrant,
    executor: ExecutorModel,
    cache: CachePlan,
    env: Environment,
    num_map_tasks: int = 0,
    calib: Calibration | None = None,
) -> StageCost:
    """Compute the cost of ``stage`` under ``config`` on ``cluster``.

    ``cache`` describes the current cache fit (for stages that read cached
    data) and ``num_map_tasks`` the upstream map-output count (for stages
    that read a shuffle).
    """
    if calib is None:
        calib = Calibration()
    if grant.executors < 1:
        raise ValueError("cannot cost a stage with zero granted executors")

    n_tasks = resolve_num_tasks(stage, config)
    ser = serializer_of(config)
    core_speed = cluster.instance.cpu_speed

    # --- per-task data volumes ---------------------------------------------
    input_pt = stage.input_mb / n_tasks
    cached_pt = stage.cached_read_mb / n_tasks
    shuffle_read_pt = stage.shuffle_read_mb / n_tasks
    shuffle_write_pt = stage.shuffle_write_mb / n_tasks
    output_pt = (stage.output_mb / n_tasks) if stage.writes_output else 0.0

    # --- resource sharing on a node ------------------------------------------
    execs_per_node = max(1.0, grant.executors / cluster.count)
    tasks_per_node = execs_per_node * executor.concurrent_tasks
    disk_share = cluster.node_disk_mb_s / tasks_per_node / env.disk_factor
    net_share = cluster.node_network_mb_s / tasks_per_node / env.network_factor
    remote_nodes_fraction = (
        (cluster.count - 1) / cluster.count if cluster.count > 1 else 0.0
    )

    cpu = 0.0
    disk = 0.0
    net = 0.0

    # --- operator computation -------------------------------------------------
    cpu += stage.cpu_s / n_tasks / core_speed

    # --- external input (HDFS-style: mostly node-local) ------------------------
    if input_pt > 0:
        locality_wait = float(config.get("spark.locality.wait", 3.0))
        remote_frac = 0.12 * pow(2.718281828, -locality_wait / 1.5)
        disk += input_pt * (1.0 - remote_frac) / disk_share
        net += input_pt * remote_frac / net_share

    # --- cached input -----------------------------------------------------------
    if cached_pt > 0:
        hit = cache.hit_fraction
        cpu += cached_pt * hit * cache.read_cpu_s_per_mb / core_speed
        cpu += cached_pt * hit / calib.cached_read_mb_s  # memory scan
        miss = cached_pt * (1.0 - hit)
        if miss > 0:
            if cache.miss_to_disk:
                disk += miss / disk_share
                cpu += miss * ser.deserialize_s_per_mb / core_speed
            else:
                # Recompute the partition: re-run its producing chain
                # (CPU) and re-read its inputs — shuffle re-fetches go
                # over the network, source re-scans over the disk.
                reread = miss * cache.recompute_io_mb_per_mb
                disk += 0.4 * reread / disk_share
                net += 0.6 * reread / net_share
                cpu += miss * (
                    cache.recompute_cpu_s_per_mb + calib.recompute_cpu_s_per_mb
                ) / core_speed

    # --- shuffle read --------------------------------------------------------------
    if shuffle_read_pt > 0:
        cost, fetch_eff = shuffle_read(
            shuffle_read_pt, config,
            num_map_tasks=max(1, num_map_tasks),
            remote_fraction=max(0.0, min(1.0, remote_nodes_fraction + 0.05)),
        )
        cpu += cost.cpu_s / core_speed
        disk += cost.disk_mb / disk_share
        net += cost.net_mb / net_share / fetch_eff

    # --- shuffle write -----------------------------------------------------------------
    if shuffle_write_pt > 0:
        reduce_tasks = int(config["spark.default.parallelism"])
        cost = shuffle_write(shuffle_write_pt, config, num_reduce_tasks=reduce_tasks)
        cpu += cost.cpu_s / core_speed
        disk += cost.disk_mb / disk_share

    # --- final output -------------------------------------------------------------------
    if output_pt > 0:
        cpu += output_pt * ser.serialize_s_per_mb / core_speed
        disk += output_pt / disk_share

    # --- memory: spill or die -------------------------------------------------------------
    working_set = (
        shuffle_read_pt * ser.expansion
        + shuffle_write_pt * calib.shuffle_write_buffer_fraction * ser.expansion
        + (input_pt + cached_pt) * calib.map_working_set_fraction * ser.expansion
    )
    storage_per_exec = cache.stored_mb / grant.executors if grant.executors else 0.0
    available = executor.execution_per_task_mb(storage_per_exec)
    spill = spill_outcome(working_set, available, stage.unspillable_fraction)
    spilled_logical = spill.spilled_mb / ser.expansion
    if spilled_logical > 0:
        spill_bytes = spilled_logical
        spill_cpu = spilled_logical * (ser.serialize_s_per_mb + ser.deserialize_s_per_mb)
        if config.get("spark.shuffle.spill.compress", True):
            codec = codec_of(config)
            spill_bytes *= codec.ratio
            spill_cpu += spilled_logical * (
                codec.compress_s_per_mb + codec.decompress_s_per_mb
            )
        spill_cpu += spill.merge_passes * spilled_logical * calib.spill_merge_cpu_s_per_mb
        cpu += spill_cpu / core_speed
        disk += 2.0 * spill_bytes / disk_share  # write + read back

    # --- GC pressure ----------------------------------------------------------------------
    resident = min(working_set, available) * executor.concurrent_tasks
    occupancy = (storage_per_exec + resident + RESERVED_MB) / max(
        executor.heap_mb, 1.0
    )
    gc = gc_fraction(occupancy) * cpu

    # Interference slows computation too (shared cores / hyperthread pairs).
    cpu *= env.cpu_factor
    gc *= env.cpu_factor

    # --- scheduling idle from locality wait -------------------------------------------------
    locality_wait = float(config.get("spark.locality.wait", 3.0))
    effective_slots = grant.executors * executor.concurrent_tasks
    waves = max(1.0, n_tasks / max(1, effective_slots))
    idle = 0.0
    if (input_pt > 0 or cached_pt > 0) and locality_wait > 0:
        # Waiting for local slots delays a fraction of waves.
        idle = min(locality_wait, 0.02 * locality_wait * waves) / waves

    task = TaskCost(
        cpu_s=cpu,
        disk_s=disk,
        net_s=net,
        gc_s=gc,
        launch_s=calib.task_launch_s,
        idle_s=idle,
        spilled_mb=spilled_logical,
        oom=spill.oom,
    )

    driver = (
        calib.driver_stage_overhead_s
        + calib.driver_dispatch_s_per_task * n_tasks
        + stage.collect_mb * calib.collect_s_per_mb
    )
    return StageCost(
        stage=stage,
        num_tasks=n_tasks,
        task=task,
        driver_s=driver,
        input_mb=stage.input_mb,
        cached_read_mb=stage.cached_read_mb,
        shuffle_read_mb=stage.shuffle_read_mb,
        shuffle_write_mb=stage.shuffle_write_mb,
        spill_mb_total=spilled_logical * n_tasks,
    )


def with_overrides(calib: Calibration, **kwargs) -> Calibration:
    """Convenience for ablations: return a modified calibration."""
    return replace(calib, **kwargs)
