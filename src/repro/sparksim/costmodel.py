"""Analytic per-task cost model.

Given one stage, a configuration, a cluster and the cache state, compute
the deterministic cost components of a single task (CPU, disk, network,
GC) plus stage-level driver overheads.  The scheduler then turns these
into a makespan by simulating slot occupancy with noise and stragglers.

Every empirical constant lives in :class:`Calibration` so ablation
benches can perturb them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

import numpy as np

from ..cloud.cluster import Cluster
from ..cloud.interference import Environment
from ..config.constraints import ResourceGrant
from ..config.encoding import ConfigColumns
from .dag import CompiledWorkload, StageProfile
from .executor import RESERVED_MB, ExecutorModel
from .memory import CachePlan, gc_fraction, plan_cache, spill_outcome
from .shuffle import CODECS, codec_of, serializer_of, shuffle_read, shuffle_write

__all__ = [
    "Calibration",
    "TaskCost",
    "StageCost",
    "compute_stage_cost",
    "BatchInputs",
    "StageCostBatch",
    "build_batch_inputs",
    "compute_stage_cost_batch",
    "PlanArrays",
    "PlanCostBatch",
    "build_plan_arrays",
    "compute_plan_cost_batch",
]


@dataclass(frozen=True)
class Calibration:
    """Empirical constants of the cost model (ablation knobs)."""

    task_launch_s: float = 0.012          # JVM task deserialize + start
    driver_dispatch_s_per_task: float = 0.0012
    driver_stage_overhead_s: float = 0.045
    app_startup_base_s: float = 1.2       # driver + executor launch
    app_startup_per_executor_s: float = 0.02
    job_submit_s: float = 0.08
    collect_s_per_mb: float = 0.02
    cached_read_mb_s: float = 1800.0      # memory-bandwidth-bound cache scan
    #: fixed per-MB overhead of a cache-miss recompute (task re-dispatch,
    #: block-manager bookkeeping) on top of the lineage-derived cost
    recompute_cpu_s_per_mb: float = 0.012
    spill_merge_cpu_s_per_mb: float = 0.004
    straggler_probability: float = 0.025
    straggler_mean_multiplier: float = 2.2
    task_noise_sigma: float = 0.08
    run_noise_sigma: float = 0.03
    #: map-stage working sets are pipelined; only a fraction is resident
    map_working_set_fraction: float = 0.35
    shuffle_write_buffer_fraction: float = 0.5
    min_parallelism_efficiency: float = 0.05


@dataclass(frozen=True)
class TaskCost:
    """Deterministic cost components of one task of a stage."""

    cpu_s: float
    disk_s: float
    net_s: float
    gc_s: float
    launch_s: float
    idle_s: float            # locality-wait scheduling idle
    spilled_mb: float
    oom: bool

    @property
    def total_s(self) -> float:
        return self.cpu_s + self.disk_s + self.net_s + self.gc_s + self.launch_s + self.idle_s


@dataclass(frozen=True)
class StageCost:
    """Per-stage cost: one representative task plus driver-side overheads."""

    stage: StageProfile
    num_tasks: int
    task: TaskCost
    driver_s: float
    # observable byte counters for metrics
    input_mb: float
    cached_read_mb: float
    shuffle_read_mb: float
    shuffle_write_mb: float
    spill_mb_total: float


def resolve_num_tasks(stage: StageProfile, config: Mapping) -> int:
    if stage.num_tasks_hint is not None:
        return max(1, int(stage.num_tasks_hint))
    return max(1, int(config["spark.default.parallelism"]))


def compute_stage_cost(
    stage: StageProfile,
    config: Mapping,
    cluster: Cluster,
    grant: ResourceGrant,
    executor: ExecutorModel,
    cache: CachePlan,
    env: Environment,
    num_map_tasks: int = 0,
    calib: Calibration | None = None,
) -> StageCost:
    """Compute the cost of ``stage`` under ``config`` on ``cluster``.

    ``cache`` describes the current cache fit (for stages that read cached
    data) and ``num_map_tasks`` the upstream map-output count (for stages
    that read a shuffle).
    """
    if calib is None:
        calib = Calibration()
    if grant.executors < 1:
        raise ValueError("cannot cost a stage with zero granted executors")

    n_tasks = resolve_num_tasks(stage, config)
    ser = serializer_of(config)
    core_speed = cluster.instance.cpu_speed

    # --- per-task data volumes ---------------------------------------------
    input_pt = stage.input_mb / n_tasks
    cached_pt = stage.cached_read_mb / n_tasks
    shuffle_read_pt = stage.shuffle_read_mb / n_tasks
    shuffle_write_pt = stage.shuffle_write_mb / n_tasks
    output_pt = (stage.output_mb / n_tasks) if stage.writes_output else 0.0

    # --- resource sharing on a node ------------------------------------------
    execs_per_node = max(1.0, grant.executors / cluster.count)
    tasks_per_node = execs_per_node * executor.concurrent_tasks
    disk_share = cluster.node_disk_mb_s / tasks_per_node / env.disk_factor
    net_share = cluster.node_network_mb_s / tasks_per_node / env.network_factor
    remote_nodes_fraction = (
        (cluster.count - 1) / cluster.count if cluster.count > 1 else 0.0
    )

    cpu = 0.0
    disk = 0.0
    net = 0.0

    # --- operator computation -------------------------------------------------
    cpu += stage.cpu_s / n_tasks / core_speed

    # --- external input (HDFS-style: mostly node-local) ------------------------
    if input_pt > 0:
        locality_wait = float(config.get("spark.locality.wait", 3.0))
        remote_frac = 0.12 * pow(2.718281828, -locality_wait / 1.5)
        disk += input_pt * (1.0 - remote_frac) / disk_share
        net += input_pt * remote_frac / net_share

    # --- cached input -----------------------------------------------------------
    if cached_pt > 0:
        hit = cache.hit_fraction
        cpu += cached_pt * hit * cache.read_cpu_s_per_mb / core_speed
        cpu += cached_pt * hit / calib.cached_read_mb_s  # memory scan
        miss = cached_pt * (1.0 - hit)
        if miss > 0:
            if cache.miss_to_disk:
                disk += miss / disk_share
                cpu += miss * ser.deserialize_s_per_mb / core_speed
            else:
                # Recompute the partition: re-run its producing chain
                # (CPU) and re-read its inputs — shuffle re-fetches go
                # over the network, source re-scans over the disk.
                reread = miss * cache.recompute_io_mb_per_mb
                disk += 0.4 * reread / disk_share
                net += 0.6 * reread / net_share
                cpu += miss * (
                    cache.recompute_cpu_s_per_mb + calib.recompute_cpu_s_per_mb
                ) / core_speed

    # --- shuffle read --------------------------------------------------------------
    if shuffle_read_pt > 0:
        cost, fetch_eff = shuffle_read(
            shuffle_read_pt, config,
            num_map_tasks=max(1, num_map_tasks),
            remote_fraction=max(0.0, min(1.0, remote_nodes_fraction + 0.05)),
        )
        cpu += cost.cpu_s / core_speed
        disk += cost.disk_mb / disk_share
        net += cost.net_mb / net_share / fetch_eff

    # --- shuffle write -----------------------------------------------------------------
    if shuffle_write_pt > 0:
        reduce_tasks = int(config["spark.default.parallelism"])
        cost = shuffle_write(shuffle_write_pt, config, num_reduce_tasks=reduce_tasks)
        cpu += cost.cpu_s / core_speed
        disk += cost.disk_mb / disk_share

    # --- final output -------------------------------------------------------------------
    if output_pt > 0:
        cpu += output_pt * ser.serialize_s_per_mb / core_speed
        disk += output_pt / disk_share

    # --- memory: spill or die -------------------------------------------------------------
    working_set = (
        shuffle_read_pt * ser.expansion
        + shuffle_write_pt * calib.shuffle_write_buffer_fraction * ser.expansion
        + (input_pt + cached_pt) * calib.map_working_set_fraction * ser.expansion
    )
    storage_per_exec = cache.stored_mb / grant.executors if grant.executors else 0.0
    available = executor.execution_per_task_mb(storage_per_exec)
    spill = spill_outcome(working_set, available, stage.unspillable_fraction)
    spilled_logical = spill.spilled_mb / ser.expansion
    if spilled_logical > 0:
        spill_bytes = spilled_logical
        spill_cpu = spilled_logical * (ser.serialize_s_per_mb + ser.deserialize_s_per_mb)
        if config.get("spark.shuffle.spill.compress", True):
            codec = codec_of(config)
            spill_bytes *= codec.ratio
            spill_cpu += spilled_logical * (
                codec.compress_s_per_mb + codec.decompress_s_per_mb
            )
        spill_cpu += spill.merge_passes * spilled_logical * calib.spill_merge_cpu_s_per_mb
        cpu += spill_cpu / core_speed
        disk += 2.0 * spill_bytes / disk_share  # write + read back

    # --- GC pressure ----------------------------------------------------------------------
    resident = min(working_set, available) * executor.concurrent_tasks
    occupancy = (storage_per_exec + resident + RESERVED_MB) / max(
        executor.heap_mb, 1.0
    )
    gc = gc_fraction(occupancy) * cpu

    # Interference slows computation too (shared cores / hyperthread pairs).
    cpu *= env.cpu_factor
    gc *= env.cpu_factor

    # --- scheduling idle from locality wait -------------------------------------------------
    locality_wait = float(config.get("spark.locality.wait", 3.0))
    effective_slots = grant.executors * executor.concurrent_tasks
    waves = max(1.0, n_tasks / max(1, effective_slots))
    idle = 0.0
    if (input_pt > 0 or cached_pt > 0) and locality_wait > 0:
        # Waiting for local slots delays a fraction of waves.
        idle = min(locality_wait, 0.02 * locality_wait * waves) / waves

    task = TaskCost(
        cpu_s=cpu,
        disk_s=disk,
        net_s=net,
        gc_s=gc,
        launch_s=calib.task_launch_s,
        idle_s=idle,
        spilled_mb=spilled_logical,
        oom=spill.oom,
    )

    driver = (
        calib.driver_stage_overhead_s
        + calib.driver_dispatch_s_per_task * n_tasks
        + stage.collect_mb * calib.collect_s_per_mb
    )
    return StageCost(
        stage=stage,
        num_tasks=n_tasks,
        task=task,
        driver_s=driver,
        input_mb=stage.input_mb,
        cached_read_mb=stage.cached_read_mb,
        shuffle_read_mb=stage.shuffle_read_mb,
        shuffle_write_mb=stage.shuffle_write_mb,
        spill_mb_total=spilled_logical * n_tasks,
    )


def with_overrides(calib: Calibration, **kwargs) -> Calibration:
    """Convenience for ablations: return a modified calibration."""
    return replace(calib, **kwargs)


# --- struct-of-arrays batch cost model ----------------------------------------
#
# One stage, N candidate configurations, single numpy passes.  The
# contract is bit-identity with :func:`compute_stage_cost`: every
# elementwise operation replicates the scalar code's operations in the
# same order and association, per-candidate branches become exact-zero
# masked contributions (adding 0.0 to a non-negative accumulator is a
# bitwise no-op), and every transcendental term (``pow``/``exp``, where
# numpy's vector kernels differ from Python's scalar libm calls in the
# last ulp) is computed elementwise with Python arithmetic.


@dataclass
class BatchInputs:
    """Config-only columns shared by every stage of a batch evaluation.

    Built once per batch by :func:`build_batch_inputs` from the raw
    configuration columns (:class:`~repro.config.encoding.ConfigColumns`),
    the resource grants and the executor models — everything the scalar
    cost model derives per call that does not depend on the stage.
    """

    n: int
    # configuration columns
    parallelism: np.ndarray
    locality_wait: np.ndarray
    remote_frac: np.ndarray
    ser_serialize: np.ndarray
    ser_deserialize: np.ndarray
    ser_expansion: np.ndarray
    codec_ratio: np.ndarray
    codec_compress: np.ndarray
    codec_decompress: np.ndarray
    shuffle_compress: np.ndarray
    spill_compress: np.ndarray
    flush_base: np.ndarray
    bypass_threshold: np.ndarray
    fetch_efficiency: np.ndarray
    per_block_s: np.ndarray
    speculation: np.ndarray
    spec_multiplier: np.ndarray
    spec_quantile: np.ndarray
    # grant / executor columns
    executors: np.ndarray
    requested: np.ndarray
    concurrent: np.ndarray
    heap_mb: np.ndarray
    unified_mb: np.ndarray
    immune_mb: np.ndarray
    offheap_mb: np.ndarray
    # resource sharing (environment folded in)
    disk_share: np.ndarray
    net_share: np.ndarray
    env_cpu: np.ndarray
    core_speed: float
    remote_nodes_fraction: float
    # cache statics (storage level / serializer / rdd.compress derived)
    cache_footprint: np.ndarray
    cache_read_cpu: np.ndarray
    cache_miss_to_disk: np.ndarray
    cache_capacity: np.ndarray


@dataclass
class StageCostBatch:
    """Per-candidate cost arrays for one stage (columns of ``TaskCost``)."""

    num_tasks: np.ndarray
    cpu_s: np.ndarray
    disk_s: np.ndarray
    net_s: np.ndarray
    gc_s: np.ndarray
    idle_s: np.ndarray
    total_s: np.ndarray
    driver_s: np.ndarray
    spilled_mb: np.ndarray       # per-task logical spill
    spill_mb_total: np.ndarray
    oom: np.ndarray


def build_batch_inputs(configs: Sequence[Mapping[str, Any]], cluster: Cluster,
                       grants: Sequence[ResourceGrant],
                       executors: Sequence[ExecutorModel],
                       envs: Sequence[Environment]) -> BatchInputs:
    """Extract the config-only columns for one batch of candidates.

    ``grants``/``executors``/``envs`` align with ``configs``; every grant
    must have at least one executor (rejected candidates never reach the
    batch path).
    """
    cols = ConfigColumns(configs)
    n = cols.n
    ser = [serializer_of(c) for c in configs]
    codec = [CODECS[c.get("spark.io.compression.codec", "lz4")] for c in configs]

    locality_wait = cols.floats("spark.locality.wait", 3.0)
    remote_frac = cols.mapped(
        lambda c: 0.12 * pow(2.718281828, -float(c.get("spark.locality.wait", 3.0)) / 1.5)
    )
    flush_base = cols.mapped(
        lambda c: 1.0 + 0.08 * (32.0 / float(c.get("spark.shuffle.file.buffer", 32))) ** 0.5
    )

    def _fetch_eff(c: Mapping[str, Any]) -> float:
        inflight = float(c.get("spark.reducer.maxSizeInFlight", 48))
        return max(min(1.0, (inflight / 48.0) ** 0.35), 0.35)

    def _per_block(c: Mapping[str, Any]) -> float:
        connections = int(c.get("spark.shuffle.io.numConnectionsPerPeer", 1))
        per_block_s = 0.00025 / max(1, connections)
        if c.get("spark.shuffle.consolidateFiles", False):
            per_block_s *= 0.4
        return per_block_s

    executors_arr = np.array([g.executors for g in grants], dtype=np.int64)
    concurrent = np.array([e.concurrent_tasks for e in executors], dtype=np.int64)

    # Resource sharing per node: identical operation order to the scalar
    # model (two sequential divisions, not a combined divisor).
    execs_per_node = np.maximum(1.0, executors_arr / cluster.count)
    tasks_per_node = execs_per_node * concurrent
    disk_factor = np.array([e.disk_factor for e in envs], dtype=float)
    net_factor = np.array([e.network_factor for e in envs], dtype=float)
    disk_share = cluster.node_disk_mb_s / tasks_per_node / disk_factor
    net_share = cluster.node_network_mb_s / tasks_per_node / net_factor
    remote_nodes_fraction = (
        (cluster.count - 1) / cluster.count if cluster.count > 1 else 0.0
    )

    # Cache statics: footprint / per-read CPU / miss policy depend only on
    # the configuration, so derive them from one empty-cache plan each.
    statics = [
        plan_cache(0.0, g.executors, e, c)
        for c, g, e in zip(configs, grants, executors)
    ]
    capacity = np.array(
        [e.storage_capacity_mb() * max(1, g.executors)
         for g, e in zip(grants, executors)],
        dtype=float,
    )

    return BatchInputs(
        n=n,
        parallelism=cols.ints("spark.default.parallelism"),
        locality_wait=locality_wait,
        remote_frac=remote_frac,
        ser_serialize=np.array([s.serialize_s_per_mb for s in ser]),
        ser_deserialize=np.array([s.deserialize_s_per_mb for s in ser]),
        ser_expansion=np.array([s.expansion for s in ser]),
        codec_ratio=np.array([c.ratio for c in codec]),
        codec_compress=np.array([c.compress_s_per_mb for c in codec]),
        codec_decompress=np.array([c.decompress_s_per_mb for c in codec]),
        shuffle_compress=cols.bools("spark.shuffle.compress", True),
        spill_compress=cols.bools("spark.shuffle.spill.compress", True),
        flush_base=flush_base,
        bypass_threshold=cols.ints("spark.shuffle.sort.bypassMergeThreshold", 200),
        fetch_efficiency=cols.mapped(_fetch_eff),
        per_block_s=cols.mapped(_per_block),
        speculation=cols.bools("spark.speculation", False),
        spec_multiplier=cols.floats("spark.speculation.multiplier", 1.5),
        spec_quantile=cols.floats("spark.speculation.quantile", 0.75),
        executors=executors_arr,
        requested=np.array([g.requested_executors for g in grants], dtype=np.int64),
        concurrent=concurrent,
        heap_mb=np.array([e.heap_mb for e in executors], dtype=float),
        unified_mb=np.array([e.unified_mb for e in executors], dtype=float),
        immune_mb=np.array([e.storage_immune_mb for e in executors], dtype=float),
        offheap_mb=np.array([e.offheap_mb for e in executors], dtype=float),
        disk_share=disk_share,
        net_share=net_share,
        env_cpu=np.array([e.cpu_factor for e in envs], dtype=float),
        core_speed=cluster.instance.cpu_speed,
        remote_nodes_fraction=remote_nodes_fraction,
        cache_footprint=np.array([s.footprint_per_mb for s in statics]),
        cache_read_cpu=np.array([s.read_cpu_s_per_mb for s in statics]),
        cache_miss_to_disk=np.array([s.miss_to_disk for s in statics], dtype=bool),
        cache_capacity=capacity,
    )


def compute_stage_cost_batch(
    stage: StageProfile,
    b: BatchInputs,
    cached_mb: float,
    recompute_cpu_s_per_mb: float,
    recompute_io_mb_per_mb: float,
    num_map_tasks: np.ndarray,
    calib: Calibration | None = None,
) -> StageCostBatch:
    """Vectorized :func:`compute_stage_cost` over one batch of candidates.

    ``cached_mb`` and the recompute means are the compiled plan's
    registry snapshot for this stage; ``num_map_tasks`` is the
    per-candidate upstream map-output count.  Stage-level data volumes
    are scalars, so the scalar model's outer branches (has input / has
    cached reads / has shuffle) are uniform across the batch; the
    per-candidate branches inside them become masked contributions.
    """
    if calib is None:
        calib = Calibration()
    n = b.n
    core_speed = b.core_speed

    if stage.num_tasks_hint is not None:
        n_tasks = np.full(n, max(1, int(stage.num_tasks_hint)), dtype=np.int64)
    else:
        n_tasks = np.maximum(1, b.parallelism)

    # --- per-task data volumes ---------------------------------------------
    input_pt = stage.input_mb / n_tasks
    cached_pt = stage.cached_read_mb / n_tasks
    shuffle_read_pt = stage.shuffle_read_mb / n_tasks
    shuffle_write_pt = stage.shuffle_write_mb / n_tasks
    output_pt = (stage.output_mb / n_tasks) if stage.writes_output else np.zeros(n)

    # --- per-stage cache fit -----------------------------------------------
    needed = cached_mb * b.cache_footprint
    stored = np.minimum(needed, b.cache_capacity)
    hit = np.divide(stored, needed, out=np.ones(n), where=needed != 0)

    cpu = np.zeros(n)
    disk = np.zeros(n)
    net = np.zeros(n)

    # --- operator computation -----------------------------------------------
    cpu = cpu + stage.cpu_s / n_tasks / core_speed

    # --- external input (HDFS-style: mostly node-local) ----------------------
    if stage.input_mb > 0:
        disk = disk + input_pt * (1.0 - b.remote_frac) / b.disk_share
        net = net + input_pt * b.remote_frac / b.net_share

    # --- cached input ---------------------------------------------------------
    if stage.cached_read_mb > 0:
        cpu = cpu + cached_pt * hit * b.cache_read_cpu / core_speed
        cpu = cpu + cached_pt * hit / calib.cached_read_mb_s  # memory scan
        miss = cached_pt * (1.0 - hit)
        missed = miss > 0
        to_disk = missed & b.cache_miss_to_disk
        disk = disk + np.where(to_disk, miss / b.disk_share, 0.0)
        cpu = cpu + np.where(to_disk, miss * b.ser_deserialize / core_speed, 0.0)
        # Recompute the partition: re-run its producing chain (CPU) and
        # re-read its inputs — shuffle re-fetches go over the network,
        # source re-scans over the disk.
        recompute = missed & ~b.cache_miss_to_disk
        reread = miss * recompute_io_mb_per_mb
        disk = disk + np.where(recompute, 0.4 * reread / b.disk_share, 0.0)
        net = net + np.where(recompute, 0.6 * reread / b.net_share, 0.0)
        cpu = cpu + np.where(
            recompute,
            miss * (recompute_cpu_s_per_mb + calib.recompute_cpu_s_per_mb) / core_speed,
            0.0,
        )

    # --- shuffle read ----------------------------------------------------------
    if stage.shuffle_read_mb > 0:
        rf = max(0.0, min(1.0, b.remote_nodes_fraction + 0.05))
        sr_cpu = shuffle_read_pt * b.ser_deserialize
        sr_cpu = np.where(
            b.shuffle_compress,
            sr_cpu + shuffle_read_pt * b.codec_decompress, sr_cpu,
        )
        wire = np.where(
            b.shuffle_compress, shuffle_read_pt * b.codec_ratio, shuffle_read_pt,
        )
        sr_cpu = sr_cpu + np.maximum(1, num_map_tasks) * b.per_block_s
        cpu = cpu + sr_cpu / core_speed
        disk = disk + wire * (1.0 - rf) / b.disk_share
        net = net + wire * rf / b.net_share / b.fetch_efficiency

    # --- shuffle write ----------------------------------------------------------
    if stage.shuffle_write_mb > 0:
        sw_cpu = shuffle_write_pt * b.ser_serialize
        sw_cpu = np.where(
            b.shuffle_compress,
            sw_cpu + shuffle_write_pt * b.codec_compress, sw_cpu,
        )
        sw_disk = np.where(
            b.shuffle_compress, shuffle_write_pt * b.codec_ratio, shuffle_write_pt,
        )
        bypass = b.parallelism <= b.bypass_threshold
        flush = np.where(bypass, b.flush_base * 1.05, b.flush_base)
        sw_cpu = np.where(bypass, sw_cpu, sw_cpu + shuffle_write_pt * 0.0030)
        cpu = cpu + sw_cpu / core_speed
        disk = disk + sw_disk * flush / b.disk_share

    # --- final output ------------------------------------------------------------
    if stage.writes_output and stage.output_mb > 0:
        cpu = cpu + output_pt * b.ser_serialize / core_speed
        disk = disk + output_pt / b.disk_share

    # --- memory: spill or die ------------------------------------------------------
    working_set = (
        shuffle_read_pt * b.ser_expansion
        + shuffle_write_pt * calib.shuffle_write_buffer_fraction * b.ser_expansion
        + (input_pt + cached_pt) * calib.map_working_set_fraction * b.ser_expansion
    )
    storage_per_exec = stored / b.executors
    available = (
        np.maximum(0.0, b.unified_mb - np.minimum(storage_per_exec, b.immune_mb))
        + b.offheap_mb
    ) / b.concurrent
    floor = 32.0 + working_set * stage.unspillable_fraction
    oom = available < floor
    spills = ~oom & (working_set > available)
    spilled_raw = np.where(spills, working_set - available, 0.0)
    merge_passes = np.where(spills, working_set // np.maximum(available, 1.0), 0.0)
    spilled_logical = spilled_raw / b.ser_expansion
    spill_cpu = spilled_logical * (b.ser_serialize + b.ser_deserialize)
    spill_cpu = np.where(
        b.spill_compress,
        spill_cpu + spilled_logical * (b.codec_compress + b.codec_decompress),
        spill_cpu,
    )
    spill_bytes = np.where(
        b.spill_compress, spilled_logical * b.codec_ratio, spilled_logical,
    )
    spill_cpu = spill_cpu + merge_passes * spilled_logical * calib.spill_merge_cpu_s_per_mb
    cpu = cpu + np.where(spills, spill_cpu / core_speed, 0.0)
    disk = disk + np.where(spills, 2.0 * spill_bytes / b.disk_share, 0.0)

    # --- GC pressure ----------------------------------------------------------------
    resident = np.minimum(working_set, available) * b.concurrent
    occupancy = (storage_per_exec + resident + RESERVED_MB) / np.maximum(b.heap_mb, 1.0)
    # gc_fraction raises occupancy to the 4th power; numpy's pow kernel
    # differs from Python's in the last ulp, so evaluate elementwise.
    gc = np.array([gc_fraction(float(o)) for o in occupancy]) * cpu

    # Interference slows computation too (shared cores / hyperthread pairs).
    cpu = cpu * b.env_cpu
    gc = gc * b.env_cpu

    # --- scheduling idle from locality wait -------------------------------------------
    effective_slots = b.executors * b.concurrent
    waves = np.maximum(1.0, n_tasks / np.maximum(1, effective_slots))
    idle = np.zeros(n)
    if stage.input_mb > 0 or stage.cached_read_mb > 0:
        raw_idle = np.minimum(
            b.locality_wait, 0.02 * b.locality_wait * waves,
        ) / waves
        idle = np.where(b.locality_wait > 0, raw_idle, 0.0)

    total = cpu + disk + net + gc + calib.task_launch_s + idle
    driver = (
        calib.driver_stage_overhead_s
        + calib.driver_dispatch_s_per_task * n_tasks
        + stage.collect_mb * calib.collect_s_per_mb
    )
    return StageCostBatch(
        num_tasks=n_tasks,
        cpu_s=cpu,
        disk_s=disk,
        net_s=net,
        gc_s=gc,
        idle_s=idle,
        total_s=total,
        driver_s=driver,
        spilled_mb=spilled_logical,
        spill_mb_total=spilled_logical * n_tasks,
        oom=oom,
    )


# --- joint stage x candidate plan program --------------------------------------
#
# The plan-level twin of :func:`compute_stage_cost_batch`: all S stages of
# a compiled workload costed for all N candidates in one fused sweep of
# (S, N) struct-of-arrays operations.  Stage-level branches of the scalar
# model become per-row masks whose contributions are ``np.where(mask,
# term, 0.0)`` — adding exact 0.0 to the non-negative accumulators is a
# bitwise no-op — so the bit-identity contract extends unchanged:
# elementwise IEEE arithmetic does not care whether it ran per stage or
# per plan.


@dataclass
class PlanArrays:
    """Stage-constant columns of one :class:`CompiledWorkload`.

    Compiled once per plan (and cached by the simulator alongside the
    plan itself): everything :func:`compute_plan_cost_batch` needs that
    depends only on the workload, shaped ``(S, 1)`` for broadcasting
    against ``(N,)`` candidate columns, plus the plain-Python metadata
    the simulator unboxes into per-stage metrics.
    """

    n_stages: int
    # (S, 1) compute columns
    hint: np.ndarray             # int64; -1 where the stage has no hint
    input_mb: np.ndarray
    cached_read_mb: np.ndarray
    shuffle_read_mb: np.ndarray
    shuffle_write_mb: np.ndarray
    output_mb_eff: np.ndarray    # 0.0 unless the stage writes output
    cpu_s: np.ndarray
    unspillable: np.ndarray
    collect_mb: np.ndarray
    cached_mb: np.ndarray        # cache-registry snapshot per stage
    recompute_cpu: np.ndarray
    recompute_io: np.ndarray
    # (S, 1) row masks mirroring the scalar model's stage-level branches
    has_input: np.ndarray
    has_cached: np.ndarray
    has_shuffle_read: np.ndarray
    has_shuffle_write: np.ndarray
    has_output: np.ndarray
    # per-stage metadata (plain Python, consumed by the metrics loop)
    stage_ids: list[int]
    names: list[str]
    deps: list[list[int]]        # dep *row indices* into plan order
    job_submits_before: list[int]
    trailing_job_submits: int
    writes_output: list[bool]
    out_mb: list[float]
    input_mb_l: list[float]
    cached_read_mb_l: list[float]
    shuffle_read_mb_l: list[float]
    shuffle_write_mb_l: list[float]


@dataclass
class PlanCostBatch:
    """(S, N) cost arrays for a whole compiled plan."""

    num_tasks: np.ndarray
    cpu_s: np.ndarray
    disk_s: np.ndarray
    net_s: np.ndarray
    gc_s: np.ndarray
    idle_s: np.ndarray
    total_s: np.ndarray
    driver_s: np.ndarray
    spilled_mb: np.ndarray
    spill_mb_total: np.ndarray
    oom: np.ndarray


def build_plan_arrays(compiled: CompiledWorkload) -> PlanArrays:
    """Extract the stage-constant columns of ``compiled`` in plan order."""
    stages = []
    cached = []
    rec_cpu = []
    rec_io = []
    submits_before = []
    pending = 0
    for cjob in compiled.jobs:
        pending += 1
        for cstage in cjob.stages:
            stages.append(cstage.stage)
            cached.append(cstage.cached_mb)
            rec_cpu.append(cstage.recompute_cpu_s_per_mb)
            rec_io.append(cstage.recompute_io_mb_per_mb)
            submits_before.append(pending)
            pending = 0
    s_count = len(stages)
    row_of: dict[int, int] = {s.stage_id: i for i, s in enumerate(stages)}

    def col(values, dtype=float) -> np.ndarray:
        return np.asarray(values, dtype=dtype).reshape(s_count, 1)

    return PlanArrays(
        n_stages=s_count,
        hint=col(
            [-1 if s.num_tasks_hint is None else max(1, int(s.num_tasks_hint))
             for s in stages],
            dtype=np.int64,
        ),
        input_mb=col([s.input_mb for s in stages]),
        cached_read_mb=col([s.cached_read_mb for s in stages]),
        shuffle_read_mb=col([s.shuffle_read_mb for s in stages]),
        shuffle_write_mb=col([s.shuffle_write_mb for s in stages]),
        output_mb_eff=col(
            [s.output_mb if s.writes_output else 0.0 for s in stages]
        ),
        cpu_s=col([s.cpu_s for s in stages]),
        unspillable=col([s.unspillable_fraction for s in stages]),
        collect_mb=col([s.collect_mb for s in stages]),
        cached_mb=col(cached),
        recompute_cpu=col(rec_cpu),
        recompute_io=col(rec_io),
        has_input=col([s.input_mb > 0 for s in stages], dtype=bool),
        has_cached=col([s.cached_read_mb > 0 for s in stages], dtype=bool),
        has_shuffle_read=col([s.shuffle_read_mb > 0 for s in stages], dtype=bool),
        has_shuffle_write=col([s.shuffle_write_mb > 0 for s in stages], dtype=bool),
        has_output=col(
            [s.writes_output and s.output_mb > 0 for s in stages], dtype=bool,
        ),
        stage_ids=[s.stage_id for s in stages],
        names=[s.name for s in stages],
        deps=[
            [row_of[d] for d in s.depends_on if d in row_of] for s in stages
        ],
        job_submits_before=submits_before,
        trailing_job_submits=pending,
        writes_output=[s.writes_output for s in stages],
        out_mb=[s.output_mb if s.writes_output else 0.0 for s in stages],
        input_mb_l=[s.input_mb for s in stages],
        cached_read_mb_l=[s.cached_read_mb for s in stages],
        shuffle_read_mb_l=[s.shuffle_read_mb for s in stages],
        shuffle_write_mb_l=[s.shuffle_write_mb for s in stages],
    )


def compute_plan_cost_batch(
    plan: PlanArrays,
    b: BatchInputs,
    calib: Calibration | None = None,
) -> PlanCostBatch:
    """All stages x all candidates in one fused struct-of-arrays sweep.

    Bit-identical to running :func:`compute_stage_cost_batch` per stage
    (and therefore to the scalar model): every elementwise operation is
    the same IEEE operation in the same order, broadcast over ``(S, N)``
    instead of ``(N,)``; stage-level ``if`` guards become row masks with
    exact-zero masked contributions; the ``pow``-carrying GC curve stays
    an elementwise Python call.
    """
    if calib is None:
        calib = Calibration()
    n = b.n
    s_count = plan.n_stages
    core_speed = b.core_speed

    n_tasks = np.where(
        plan.hint >= 0,
        np.broadcast_to(plan.hint, (s_count, n)),
        np.broadcast_to(np.maximum(1, b.parallelism), (s_count, n)),
    )

    # Upstream map-output counts: integer sums of earlier rows, exact.
    num_map = np.zeros((s_count, n), dtype=np.int64)
    for row, dep_rows in enumerate(plan.deps):
        for d in dep_rows:
            num_map[row] += n_tasks[d]

    # --- per-task data volumes ---------------------------------------------
    input_pt = plan.input_mb / n_tasks
    cached_pt = plan.cached_read_mb / n_tasks
    shuffle_read_pt = plan.shuffle_read_mb / n_tasks
    shuffle_write_pt = plan.shuffle_write_mb / n_tasks
    output_pt = plan.output_mb_eff / n_tasks

    # --- per-stage cache fit -----------------------------------------------
    needed = plan.cached_mb * b.cache_footprint
    stored = np.minimum(needed, b.cache_capacity)
    hit = np.divide(stored, needed, out=np.ones((s_count, n)),
                    where=needed != 0)

    cpu = np.zeros((s_count, n))
    disk = np.zeros((s_count, n))
    net = np.zeros((s_count, n))

    # --- operator computation -----------------------------------------------
    cpu = cpu + plan.cpu_s / n_tasks / core_speed

    # --- external input (HDFS-style: mostly node-local) ----------------------
    has_input = plan.has_input
    disk = disk + np.where(
        has_input, input_pt * (1.0 - b.remote_frac) / b.disk_share, 0.0,
    )
    net = net + np.where(has_input, input_pt * b.remote_frac / b.net_share, 0.0)

    # --- cached input ---------------------------------------------------------
    has_cached = plan.has_cached
    cpu = cpu + np.where(
        has_cached, cached_pt * hit * b.cache_read_cpu / core_speed, 0.0,
    )
    cpu = cpu + np.where(
        has_cached, cached_pt * hit / calib.cached_read_mb_s, 0.0,
    )
    miss = cached_pt * (1.0 - hit)
    missed = miss > 0
    to_disk = has_cached & missed & b.cache_miss_to_disk
    disk = disk + np.where(to_disk, miss / b.disk_share, 0.0)
    cpu = cpu + np.where(to_disk, miss * b.ser_deserialize / core_speed, 0.0)
    # Recompute the partition: re-run its producing chain (CPU) and
    # re-read its inputs — shuffle re-fetches go over the network,
    # source re-scans over the disk.
    recompute = has_cached & missed & ~b.cache_miss_to_disk
    reread = miss * plan.recompute_io
    disk = disk + np.where(recompute, 0.4 * reread / b.disk_share, 0.0)
    net = net + np.where(recompute, 0.6 * reread / b.net_share, 0.0)
    cpu = cpu + np.where(
        recompute,
        miss * (plan.recompute_cpu + calib.recompute_cpu_s_per_mb) / core_speed,
        0.0,
    )

    # --- shuffle read ----------------------------------------------------------
    has_sr = plan.has_shuffle_read
    rf = max(0.0, min(1.0, b.remote_nodes_fraction + 0.05))
    sr_cpu = shuffle_read_pt * b.ser_deserialize
    sr_cpu = np.where(
        b.shuffle_compress, sr_cpu + shuffle_read_pt * b.codec_decompress, sr_cpu,
    )
    wire = np.where(
        b.shuffle_compress, shuffle_read_pt * b.codec_ratio, shuffle_read_pt,
    )
    sr_cpu = sr_cpu + np.maximum(1, num_map) * b.per_block_s
    cpu = cpu + np.where(has_sr, sr_cpu / core_speed, 0.0)
    disk = disk + np.where(has_sr, wire * (1.0 - rf) / b.disk_share, 0.0)
    net = net + np.where(has_sr, wire * rf / b.net_share / b.fetch_efficiency, 0.0)

    # --- shuffle write ----------------------------------------------------------
    has_sw = plan.has_shuffle_write
    sw_cpu = shuffle_write_pt * b.ser_serialize
    sw_cpu = np.where(
        b.shuffle_compress, sw_cpu + shuffle_write_pt * b.codec_compress, sw_cpu,
    )
    sw_disk = np.where(
        b.shuffle_compress, shuffle_write_pt * b.codec_ratio, shuffle_write_pt,
    )
    bypass = b.parallelism <= b.bypass_threshold
    flush = np.where(bypass, b.flush_base * 1.05, b.flush_base)
    sw_cpu = np.where(bypass, sw_cpu, sw_cpu + shuffle_write_pt * 0.0030)
    cpu = cpu + np.where(has_sw, sw_cpu / core_speed, 0.0)
    disk = disk + np.where(has_sw, sw_disk * flush / b.disk_share, 0.0)

    # --- final output ------------------------------------------------------------
    has_out = plan.has_output
    cpu = cpu + np.where(has_out, output_pt * b.ser_serialize / core_speed, 0.0)
    disk = disk + np.where(has_out, output_pt / b.disk_share, 0.0)

    # --- memory: spill or die ------------------------------------------------------
    working_set = (
        shuffle_read_pt * b.ser_expansion
        + shuffle_write_pt * calib.shuffle_write_buffer_fraction * b.ser_expansion
        + (input_pt + cached_pt) * calib.map_working_set_fraction * b.ser_expansion
    )
    storage_per_exec = stored / b.executors
    available = (
        np.maximum(0.0, b.unified_mb - np.minimum(storage_per_exec, b.immune_mb))
        + b.offheap_mb
    ) / b.concurrent
    floor = 32.0 + working_set * plan.unspillable
    oom = available < floor
    spills = ~oom & (working_set > available)
    spilled_raw = np.where(spills, working_set - available, 0.0)
    merge_passes = np.where(spills, working_set // np.maximum(available, 1.0), 0.0)
    spilled_logical = spilled_raw / b.ser_expansion
    spill_cpu = spilled_logical * (b.ser_serialize + b.ser_deserialize)
    spill_cpu = np.where(
        b.spill_compress,
        spill_cpu + spilled_logical * (b.codec_compress + b.codec_decompress),
        spill_cpu,
    )
    spill_bytes = np.where(
        b.spill_compress, spilled_logical * b.codec_ratio, spilled_logical,
    )
    spill_cpu = spill_cpu + merge_passes * spilled_logical * calib.spill_merge_cpu_s_per_mb
    cpu = cpu + np.where(spills, spill_cpu / core_speed, 0.0)
    disk = disk + np.where(spills, 2.0 * spill_bytes / b.disk_share, 0.0)

    # --- GC pressure ----------------------------------------------------------------
    resident = np.minimum(working_set, available) * b.concurrent
    occupancy = (storage_per_exec + resident + RESERVED_MB) / np.maximum(b.heap_mb, 1.0)
    # gc_fraction raises occupancy to the 4th power; numpy's pow kernel
    # differs from Python's in the last ulp, so evaluate elementwise.
    gc = np.array(
        [gc_fraction(o) for o in occupancy.ravel().tolist()]
    ).reshape(s_count, n) * cpu

    # Interference slows computation too (shared cores / hyperthread pairs).
    cpu = cpu * b.env_cpu
    gc = gc * b.env_cpu

    # --- scheduling idle from locality wait -------------------------------------------
    effective_slots = b.executors * b.concurrent
    waves = np.maximum(1.0, n_tasks / np.maximum(1, effective_slots))
    raw_idle = np.minimum(
        b.locality_wait, 0.02 * b.locality_wait * waves,
    ) / waves
    idle = np.where(
        (has_input | has_cached) & (b.locality_wait > 0), raw_idle, 0.0,
    )

    total = cpu + disk + net + gc + calib.task_launch_s + idle
    driver = (
        calib.driver_stage_overhead_s
        + calib.driver_dispatch_s_per_task * n_tasks
        + plan.collect_mb * calib.collect_s_per_mb
    )
    return PlanCostBatch(
        num_tasks=n_tasks,
        cpu_s=cpu,
        disk_s=disk,
        net_s=net,
        gc_s=gc,
        idle_s=idle,
        total_s=total,
        driver_s=driver,
        spilled_mb=spilled_logical,
        spill_mb_total=spilled_logical * n_tasks,
        oom=oom,
    )
