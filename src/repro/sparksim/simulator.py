"""The Spark application simulator.

Executes a workload (a sequence of jobs over RDD lineages) on a virtual
cluster under a given configuration and interference environment,
producing an :class:`~repro.sparksim.metrics.ExecutionResult` with
Spark-style per-stage metrics.

The execution pipeline mirrors Fig. 2 of the paper: jobs are compiled to
stage DAGs (:mod:`repro.sparksim.dag`), stages run in topological order,
each stage's tasks are costed analytically
(:mod:`repro.sparksim.costmodel`) and scheduled onto granted executor
slots (:mod:`repro.sparksim.scheduler`).  Configurations that do not fit
the cluster fail fast; tasks whose working set cannot even spill OOM and
fail the application after retries — both produce the expensive crash
behaviour Section IV of the paper describes.

Three throughput layers sit on top of the single-run path:

* a **compiled-plan cache**: the stage DAG and the cache-registry
  evolution are config-independent, so each ``(workload, input_mb,
  job-list fingerprint)`` compiles once and every candidate evaluation
  replays the immutable :class:`~repro.sparksim.dag.CompiledWorkload`
  — optionally backed by a cross-process on-disk
  :class:`~repro.sparksim.planstore.PlanStore` so pool workers never
  recompile plans the parent already built;
* a **candidate-batched joint program** (:meth:`SparkSimulator.run_batch`)
  that costs *all stages for all candidates* in one fused ``(stages,
  candidates)`` numpy sweep (:func:`~repro.sparksim.costmodel.
  compute_plan_cost_batch` over cached
  :class:`~repro.sparksim.costmodel.PlanArrays`), then replays only the
  rng-ordered scheduling walk per candidate from bulk-unboxed scalars,
  with the per-candidate generators pre-seeded by one vectorized
  sweep (:mod:`repro.sparksim.rngpool`).  Its contract is
  *bit-identity*: the results equal a loop of
  :meth:`SparkSimulator.run` exactly, including OOM/reject candidates
  and injected faults (fault-struck candidates drop out of the batch
  and finish on the scalar path).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ..cloud.cluster import Cluster
from ..cloud.interference import QUIET, Environment
from ..config.constraints import grant_resources
from .costmodel import (
    Calibration,
    PlanArrays,
    build_batch_inputs,
    build_plan_arrays,
    compute_plan_cost_batch,
    compute_stage_cost,
)
from .dag import CompiledWorkload, compile_workload, fingerprint_jobs
from .executor import ExecutorModel
from .faults import NO_FAULTS, FaultPlan
from .memory import plan_cache
from .metrics import ExecutionResult, StageMetrics, TaskMetrics
from .rngpool import GeneratorPool
from .scheduler import (
    _list_schedule,
    _median_1d,
    _median_quantile_1d,
    _sample_durations,
    schedule_stage,
)

if TYPE_CHECKING:
    from ..config.constraints import ResourceGrant
    from ..workloads.base import Workload
    from .costmodel import StageCost
    from .dag import CompiledStage
    from .planstore import PlanStore
    from .rdd import Job

__all__ = ["SparkSimulator"]

#: wall-clock consumed before the cluster manager rejects an unsatisfiable
#: resource request (container negotiation + timeout)
_REJECT_S = 25.0

#: failed task attempts before Spark aborts the stage and the application
_MAX_ATTEMPTS = 4


class SparkSimulator:
    """Simulates Spark application executions.

    Parameters
    ----------
    calibration:
        Cost-model constants; override for ablation studies.
    noise:
        When ``False``, task durations are deterministic (useful for
        model unit tests); benches keep it ``True``.
    fault_plan:
        Optional :class:`~repro.sparksim.faults.FaultPlan`; faults are
        drawn deterministically from each run's seed (never from the
        noise stream), so injected scenarios are reproducible and a
        non-firing plan leaves results bit-identical to no plan.
    plan_cache_size:
        Number of compiled workload plans kept (LRU); 0 disables plan
        caching and recompiles on every run (the throughput benchmark
        uses this to measure the cache's contribution).  Plans are
        immutable and config-independent; the cache only trades memory
        for re-compilation time, never changes results.
    plan_store:
        Optional :class:`~repro.sparksim.planstore.PlanStore` — a
        shared on-disk tier below the content cache.  Content-tier
        misses consult the store before compiling and publish fresh
        plans to it, so processes sharing a store directory (a pool
        parent and its workers) compile each plan once, cluster-wide.
    """

    def __init__(self, calibration: Calibration | None = None, noise: bool = True,
                 fault_plan: FaultPlan | None = None, plan_cache_size: int = 64,
                 plan_store: "PlanStore | None" = None):
        self.calibration = calibration or Calibration()
        self.noise = noise
        self.fault_plan = fault_plan
        if plan_cache_size < 0:
            raise ValueError("plan_cache_size must be >= 0")
        self.plan_cache_size = plan_cache_size
        self.plan_store = plan_store
        # Identity tier: (id(workload), input_mb) -> (workload, compiled).
        # Holding the workload object strongly pins its id, so a hit is
        # guaranteed to be the same object (ids are only reused after
        # collection).  Content tier: (name, input_mb, fingerprint) ->
        # compiled, so equal-content workload *objects* share one plan
        # while same-named workloads with different job lists never
        # collide (the fingerprint is part of the key).
        self._plan_cache_by_id: OrderedDict = OrderedDict()
        self._plan_cache_by_content: OrderedDict = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        # Joint-program cache: id(compiled) -> (compiled, PlanArrays).
        # Holding the compiled plan strongly pins its id, like the plan
        # cache's identity tier.
        self._plan_arrays_cache: OrderedDict = OrderedDict()
        # Pooled per-candidate noise generators for the batch fast path.
        self._rng_pool = GeneratorPool()

    # --- plan cache -------------------------------------------------------
    def compile_workload(self, workload: Workload,
                         input_mb: float) -> CompiledWorkload:
        """Return the (cached) compiled plan for ``workload`` at ``input_mb``.

        Assumes ``workload.jobs()`` is pure (same object, same job list)
        — true for every workload in :mod:`repro.workloads`.  Distinct
        objects fall through to a content fingerprint, so two same-named
        workloads with different job lists get distinct plans.
        """
        if self.plan_cache_size == 0:
            self.plan_cache_misses += 1
            return compile_workload(
                workload.name, input_mb, workload.jobs(input_mb),
            )
        id_key = (id(workload), float(input_mb))
        hit = self._plan_cache_by_id.get(id_key)
        if hit is not None and hit[0] is workload:
            self._plan_cache_by_id.move_to_end(id_key)
            self.plan_cache_hits += 1
            return hit[1]
        jobs = workload.jobs(input_mb)
        fingerprint = fingerprint_jobs(jobs)
        content_key = (workload.name, float(input_mb), fingerprint)
        compiled = self._plan_cache_by_content.get(content_key)
        if compiled is not None:
            self._plan_cache_by_content.move_to_end(content_key)
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
            # Disk tier: another process (typically the pool parent) may
            # already have compiled this exact content key.
            stored = (
                self.plan_store.get(workload.name, input_mb, fingerprint)
                if self.plan_store is not None else None
            )
            if stored is not None:
                compiled = stored
            else:
                compiled = compile_workload(
                    workload.name, input_mb, jobs, fingerprint=fingerprint,
                )
                if self.plan_store is not None:
                    self.plan_store.put(
                        workload.name, input_mb, fingerprint, compiled,
                    )
            self._plan_cache_by_content[content_key] = compiled
            while len(self._plan_cache_by_content) > self.plan_cache_size:
                self._plan_cache_by_content.popitem(last=False)
        self._plan_cache_by_id[id_key] = (workload, compiled)
        while len(self._plan_cache_by_id) > self.plan_cache_size:
            self._plan_cache_by_id.popitem(last=False)
        return compiled

    # --- single-candidate path -------------------------------------------
    def run(self, workload: Workload, input_mb: float, cluster: Cluster,
            config: Mapping[str, Any],
            env: Environment = QUIET, seed: int = 0) -> ExecutionResult:
        """Execute ``workload`` at ``input_mb`` scale and return metrics."""
        compiled = self.compile_workload(workload, input_mb)
        return self._run_compiled(compiled, cluster, config, env=env, seed=seed)

    def run_jobs(self, name: str, input_mb: float, jobs: Sequence[Job],
                 cluster: Cluster, config: Mapping[str, Any],
                 env: Environment = QUIET, seed: int = 0) -> ExecutionResult:
        """Execute an explicit job list (compiled fresh, uncached)."""
        compiled = compile_workload(name, input_mb, jobs)
        return self._run_compiled(compiled, cluster, config, env=env, seed=seed)

    def _run_compiled(self, compiled: CompiledWorkload, cluster: Cluster,
                      config: Mapping[str, Any], env: Environment = QUIET,
                      seed: int = 0) -> ExecutionResult:
        calib = self.calibration
        name = compiled.name
        input_mb = compiled.input_mb
        rng = np.random.default_rng(seed)
        # Faults ride their own (salt, seed)-keyed stream: drawing them
        # never perturbs the noise rng, so a non-firing plan is a no-op.
        faults = (
            self.fault_plan.draw(seed) if self.fault_plan is not None
            else NO_FAULTS
        )
        injected: list[str] = []
        if faults.env_multiplier > 1.0:
            env = faults.spike_env(env)
            injected.append(f"env_spike:x{faults.env_multiplier:g}")
        grant = grant_resources(config, cluster)
        if grant.executors < 1:
            return ExecutionResult(
                workload=name, input_mb=input_mb, runtime_s=_REJECT_S,
                success=False, executors_granted=0,
                executors_requested=grant.requested_executors,
                failure_reason="executor container does not fit any node",
                environment_factor=env.combined(),
                faults_injected=tuple(injected),
            )

        executor = ExecutorModel.from_config(config)
        # spark.task.cpus reserves multiple cores per task: the number of
        # concurrently running tasks is executors x (cores // task.cpus).
        slots = max(1, grant.executors * executor.concurrent_tasks)
        runtime = calib.app_startup_base_s + calib.app_startup_per_executor_s * grant.executors
        stage_metrics: list[StageMetrics] = []
        tasks_of_stage: dict[int, int] = {}
        ordinal = 0          # executed-stage counter; targets stage faults

        for cjob in compiled.jobs:
            runtime += calib.job_submit_s
            for cstage in cjob.stages:
                stage = cstage.stage
                cache = plan_cache(
                    cstage.cached_mb, grant.executors, executor, config,
                    recompute_cpu_s_per_mb=cstage.recompute_cpu_s_per_mb,
                    recompute_io_mb_per_mb=cstage.recompute_io_mb_per_mb,
                )
                num_map_tasks = sum(
                    tasks_of_stage.get(dep, 0) for dep in stage.depends_on
                )
                cost = compute_stage_cost(
                    stage, config, cluster, grant, executor, cache, env,
                    num_map_tasks=num_map_tasks, calib=calib,
                )
                tasks_of_stage[stage.stage_id] = cost.num_tasks

                if ordinal == faults.oom_stage:
                    # Injected container kill: retries then application abort,
                    # the same expensive crash shape as a genuine OOM.
                    wasted = cost.task.total_s * _MAX_ATTEMPTS + cost.driver_s
                    runtime += wasted
                    stage_metrics.append(self._failed_stage(stage, cost, wasted))
                    injected.append(f"oom_kill:stage{ordinal}")
                    return ExecutionResult(
                        workload=name, input_mb=input_mb, runtime_s=runtime,
                        success=False, stages=stage_metrics,
                        executors_granted=grant.executors,
                        executors_requested=grant.requested_executors,
                        total_slots=slots,
                        failure_reason=(
                            f"fault-injected OOM kill in stage "
                            f"{stage.stage_id} ({stage.name})"
                        ),
                        environment_factor=env.combined(),
                        faults_injected=tuple(injected),
                    )

                if cost.task.oom:
                    # Retries then application abort.
                    wasted = cost.task.total_s * _MAX_ATTEMPTS + cost.driver_s
                    runtime += wasted
                    stage_metrics.append(self._failed_stage(stage, cost, wasted))
                    return ExecutionResult(
                        workload=name, input_mb=input_mb, runtime_s=runtime,
                        success=False, stages=stage_metrics,
                        executors_granted=grant.executors,
                        executors_requested=grant.requested_executors,
                        total_slots=slots,
                        failure_reason=(
                            f"OOM in stage {stage.stage_id} ({stage.name}): "
                            f"task working set {cost.task.spilled_mb + 0:.0f}MB+ "
                            f"exceeds executor execution memory"
                        ),
                        environment_factor=env.combined(),
                        faults_injected=tuple(injected),
                    )

                schedule = schedule_stage(
                    cost.num_tasks, cost.task.total_s, slots,
                    config, rng, calib=calib, noise=self.noise,
                )
                makespan = schedule.makespan_s
                if ordinal == faults.straggler_stage:
                    makespan *= faults.straggler_factor
                    injected.append(
                        f"straggler:stage{ordinal}:x{faults.straggler_factor:g}"
                    )
                if ordinal == faults.loss_stage and faults.loss_fraction > 0.0:
                    # In-flight work on the lost executors re-runs, and every
                    # later stage schedules onto the surviving slots only.
                    makespan += schedule.makespan_s * faults.loss_fraction
                    lost = min(
                        grant.executors - 1,
                        max(1, round(grant.executors * faults.loss_fraction)),
                    )
                    if lost > 0:
                        slots = max(
                            1,
                            (grant.executors - lost) * executor.concurrent_tasks,
                        )
                    injected.append(f"executor_loss:stage{ordinal}:{lost}")
                elapsed = makespan + cost.driver_s
                runtime += elapsed
                ordinal += 1
                n = cost.num_tasks
                stage_metrics.append(
                    StageMetrics(
                        stage_id=stage.stage_id,
                        name=stage.name,
                        num_tasks=n,
                        duration_s=elapsed,
                        input_mb=cost.input_mb,
                        cached_read_mb=cost.cached_read_mb,
                        shuffle_read_mb=cost.shuffle_read_mb,
                        shuffle_write_mb=cost.shuffle_write_mb,
                        spill_mb=cost.spill_mb_total,
                        cpu_time_s=cost.task.cpu_s * n,
                        gc_time_s=cost.task.gc_s * n,
                        io_time_s=cost.task.disk_s * n,
                        net_time_s=cost.task.net_s * n,
                        task_metrics=schedule.task_metrics,
                        output_mb=stage.output_mb if stage.writes_output else 0.0,
                        writes_output=stage.writes_output,
                    )
                )

        if self.noise:
            runtime *= float(
                rng.lognormal(
                    mean=-0.5 * calib.run_noise_sigma**2,
                    sigma=calib.run_noise_sigma,
                )
            )
        return ExecutionResult(
            workload=name, input_mb=input_mb, runtime_s=runtime, success=True,
            stages=stage_metrics,
            executors_granted=grant.executors,
            executors_requested=grant.requested_executors,
            total_slots=slots,
            environment_factor=env.combined(),
            faults_injected=tuple(injected),
        )

    # --- candidate-batched path ------------------------------------------
    def run_batch(self, workload: Workload, input_mb: float, cluster: Cluster,
                  configs: Sequence[Mapping[str, Any]],
                  envs: Sequence[Environment] | None = None,
                  seeds: Sequence[int] | None = None) -> list[ExecutionResult]:
        """Evaluate many configurations of one workload; bit-identical to
        ``[self.run(workload, input_mb, cluster, c, env=e, seed=s) ...]``.

        ``envs``/``seeds`` default to ``QUIET``/``0`` for every candidate
        (matching :meth:`run`'s defaults).  Candidates struck by
        simulated faults finish on the scalar path; everything else runs
        through one vectorized cost sweep per stage.
        """
        configs = list(configs)
        n = len(configs)
        envs = [QUIET] * n if envs is None else list(envs)
        seeds = [0] * n if seeds is None else list(seeds)
        if len(envs) != n or len(seeds) != n:
            raise ValueError("configs, envs and seeds must have equal length")
        if n == 0:
            return []
        compiled = self.compile_workload(workload, input_mb)
        if n == 1:
            return [self._run_compiled(compiled, cluster, configs[0],
                                       env=envs[0], seed=seeds[0])]
        return self._run_batch_compiled(compiled, cluster, configs, envs, seeds)

    def _run_batch_compiled(self, compiled: CompiledWorkload, cluster: Cluster,
                            configs: Sequence[Mapping[str, Any]],
                            envs: Sequence[Environment],
                            seeds: Sequence[int]) -> list[ExecutionResult]:
        calib = self.calibration
        n = len(configs)
        results: list[ExecutionResult | None] = [None] * n

        # Screen candidates: simulated faults (stage targets, env spikes)
        # perturb control flow mid-run, so those candidates take the
        # scalar path; rejected grants fail before any rng draw and are
        # also handled scalar (it is the same early-exit code).
        # worker_crash is an infrastructure fault the simulator ignores.
        scalar: list[int] = []
        active: list[int] = []
        grants = {}
        for i in range(n):
            faults = (
                self.fault_plan.draw(seeds[i]) if self.fault_plan is not None
                else NO_FAULTS
            )
            if (faults.loss_stage >= 0 or faults.straggler_stage >= 0
                    or faults.oom_stage >= 0 or faults.env_multiplier > 1.0):
                scalar.append(i)
                continue
            grant = grant_resources(configs[i], cluster)
            if grant.executors < 1:
                scalar.append(i)
                continue
            grants[i] = grant
            active.append(i)

        if active:
            self._run_active_batch(compiled, cluster, configs, envs, seeds,
                                   active, grants, results)
        for i in scalar:
            results[i] = self._run_compiled(compiled, cluster, configs[i],
                                            env=envs[i], seed=seeds[i])
        # every index is filled by exactly one of the three paths above,
        # so the Optional slots are all resolved by now
        return results  # type: ignore[return-value]

    def _plan_program(self, compiled: CompiledWorkload) -> PlanArrays:
        """The (cached) joint-program columns for ``compiled``.

        Keyed by plan identity like the plan cache's id tier; plans are
        immutable, so the derived arrays are too.
        """
        if self.plan_cache_size == 0:
            return build_plan_arrays(compiled)
        key = id(compiled)
        hit = self._plan_arrays_cache.get(key)
        if hit is not None and hit[0] is compiled:
            self._plan_arrays_cache.move_to_end(key)
            return hit[1]
        arrays = build_plan_arrays(compiled)
        self._plan_arrays_cache[key] = (compiled, arrays)
        while len(self._plan_arrays_cache) > self.plan_cache_size:
            self._plan_arrays_cache.popitem(last=False)
        return arrays

    def _run_active_batch(self, compiled: CompiledWorkload, cluster: Cluster,
                          configs: Sequence[Mapping[str, Any]],
                          envs: Sequence[Environment], seeds: Sequence[int],
                          active: Sequence[int],
                          grants: Mapping[int, ResourceGrant],
                          results: list[ExecutionResult | None]) -> None:
        """Joint sweep over the fault-free, granted candidates.

        One fused ``(stages, candidates)`` cost program
        (:func:`compute_plan_cost_batch`) replaces the per-stage batch
        loop; what remains per candidate is the rng-ordered scheduling
        walk, driven entirely from bulk-unboxed Python scalars.  Noise
        generators come pre-seeded from the pooled vectorized seeder.
        """
        calib = self.calibration
        noise = self.noise
        m = len(active)
        cfgs = [configs[i] for i in active]
        grant_list = [grants[i] for i in active]
        executors = [ExecutorModel.from_config(c) for c in cfgs]
        b = build_batch_inputs(cfgs, cluster, grant_list, executors,
                               [envs[i] for i in active])
        plan = self._plan_program(compiled)
        cost = compute_plan_cost_batch(plan, b, calib)
        rngs = self._rng_pool.generators([seeds[i] for i in active])

        # One bulk unbox per array instead of a numpy scalar lookup per
        # field per candidate per stage; tolist() yields the same Python
        # floats/ints bit for bit.
        slots_l = np.maximum(1, b.executors * b.concurrent).tolist()
        startup_l = (
            calib.app_startup_base_s
            + calib.app_startup_per_executor_s * b.executors
        ).tolist()
        execs_l = b.executors.tolist()
        req_l = b.requested.tolist()
        spec_l = b.speculation.tolist()
        mult_l = b.spec_multiplier.tolist()
        q_l = b.spec_quantile.tolist()
        ntasks_ll = cost.num_tasks.tolist()
        total_ll = cost.total_s.tolist()
        driver_ll = cost.driver_s.tolist()
        oom_ll = cost.oom.tolist()
        cpu_ll = cost.cpu_s.tolist()
        gc_ll = cost.gc_s.tolist()
        disk_ll = cost.disk_s.tolist()
        net_ll = cost.net_s.tolist()
        spill_ll = cost.spill_mb_total.tolist()
        spilled_ll = cost.spilled_mb.tolist()

        s_count = plan.n_stages
        submits = plan.job_submits_before
        stage_ids = plan.stage_ids
        names = plan.names
        sigma = calib.run_noise_sigma
        job_submit_s = calib.job_submit_s

        for k in range(m):
            rng = rngs[k]
            runtime = startup_l[k]
            slots_k = slots_l[k]
            spec_k = spec_l[k]
            stages_k: list[StageMetrics] = []
            failed = False
            for s in range(s_count):
                for _ in range(submits[s]):
                    runtime += job_submit_s
                if oom_ll[s][k]:
                    # Retries then application abort — same arithmetic as
                    # the scalar early exit, from the plan arrays.
                    wasted = total_ll[s][k] * _MAX_ATTEMPTS + driver_ll[s][k]
                    runtime += wasted
                    stages_k.append(StageMetrics(
                        stage_id=stage_ids[s], name=names[s],
                        num_tasks=ntasks_ll[s][k], duration_s=wasted,
                        input_mb=plan.input_mb_l[s],
                        cached_read_mb=plan.cached_read_mb_l[s],
                        shuffle_read_mb=plan.shuffle_read_mb_l[s],
                        shuffle_write_mb=plan.shuffle_write_mb_l[s],
                        spill_mb=0.0, cpu_time_s=0.0, gc_time_s=0.0,
                        io_time_s=0.0, net_time_s=0.0, failed=True,
                    ))
                    results[active[k]] = ExecutionResult(
                        workload=compiled.name, input_mb=compiled.input_mb,
                        runtime_s=runtime, success=False,
                        stages=stages_k,
                        executors_granted=execs_l[k],
                        executors_requested=req_l[k],
                        total_slots=slots_k,
                        failure_reason=(
                            f"OOM in stage {stage_ids[s]} ({names[s]}): "
                            f"task working set {spilled_ll[s][k] + 0:.0f}MB+ "
                            f"exceeds executor execution memory"
                        ),
                        environment_factor=envs[active[k]].combined(),
                        faults_injected=(),
                    )
                    failed = True
                    break

                n_i = ntasks_ll[s][k]
                if noise:
                    durations = _sample_durations(n_i, total_ll[s][k], rng,
                                                  calib)
                else:
                    durations = np.full(n_i, total_ll[s][k])
                if spec_k and noise and n_i >= 4:
                    median, cutoff = _median_quantile_1d(durations, q_l[k])
                    threshold = median * max(1.01, mult_l[k])
                    candidates = durations > max(threshold, cutoff)
                    speculated = int(candidates.sum())
                    if speculated:
                        clamped = durations.copy()
                        finish_with_copy = threshold + median
                        clamped[candidates] = np.minimum(
                            clamped[candidates], finish_with_copy,
                        )
                        extra = np.full(speculated, _median_1d(clamped) * 0.5)
                        durations = np.concatenate([clamped, extra])
                makespan = _list_schedule(durations, slots_k)
                real = durations[:n_i]
                p50, p95 = _median_quantile_1d(real, 0.95)
                elapsed = makespan + driver_ll[s][k]
                runtime += elapsed
                stages_k.append(StageMetrics(
                    stage_id=stage_ids[s],
                    name=names[s],
                    num_tasks=n_i,
                    duration_s=elapsed,
                    input_mb=plan.input_mb_l[s],
                    cached_read_mb=plan.cached_read_mb_l[s],
                    shuffle_read_mb=plan.shuffle_read_mb_l[s],
                    shuffle_write_mb=plan.shuffle_write_mb_l[s],
                    spill_mb=spill_ll[s][k],
                    cpu_time_s=cpu_ll[s][k] * n_i,
                    gc_time_s=gc_ll[s][k] * n_i,
                    io_time_s=disk_ll[s][k] * n_i,
                    net_time_s=net_ll[s][k] * n_i,
                    task_metrics=TaskMetrics(
                        count=n_i,
                        mean_s=float(real.sum() / real.size),
                        p50_s=p50,
                        p95_s=p95,
                        max_s=float(real.max()),
                    ),
                    output_mb=plan.out_mb[s],
                    writes_output=plan.writes_output[s],
                ))
            if failed:
                continue
            for _ in range(plan.trailing_job_submits):
                runtime += job_submit_s
            if noise:
                runtime *= float(
                    rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma)
                )
            results[active[k]] = ExecutionResult(
                workload=compiled.name, input_mb=compiled.input_mb,
                runtime_s=runtime, success=True, stages=stages_k,
                executors_granted=execs_l[k],
                executors_requested=req_l[k],
                total_slots=slots_k,
                environment_factor=envs[active[k]].combined(),
                faults_injected=(),
            )

    @staticmethod
    def _failed_stage(stage: CompiledStage, cost: StageCost,
                      wasted: float) -> StageMetrics:
        return StageMetrics(
            stage_id=stage.stage_id, name=stage.name, num_tasks=cost.num_tasks,
            duration_s=wasted, input_mb=cost.input_mb,
            cached_read_mb=cost.cached_read_mb,
            shuffle_read_mb=cost.shuffle_read_mb,
            shuffle_write_mb=cost.shuffle_write_mb,
            spill_mb=0.0, cpu_time_s=0.0, gc_time_s=0.0, io_time_s=0.0,
            net_time_s=0.0, failed=True,
        )
