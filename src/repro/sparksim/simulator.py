"""The Spark application simulator.

Executes a workload (a sequence of jobs over RDD lineages) on a virtual
cluster under a given configuration and interference environment,
producing an :class:`~repro.sparksim.metrics.ExecutionResult` with
Spark-style per-stage metrics.

The execution pipeline mirrors Fig. 2 of the paper: jobs are compiled to
stage DAGs (:mod:`repro.sparksim.dag`), stages run in topological order,
each stage's tasks are costed analytically
(:mod:`repro.sparksim.costmodel`) and scheduled onto granted executor
slots (:mod:`repro.sparksim.scheduler`).  Configurations that do not fit
the cluster fail fast; tasks whose working set cannot even spill OOM and
fail the application after retries — both produce the expensive crash
behaviour Section IV of the paper describes.

Two throughput layers sit on top of the single-run path:

* a **compiled-plan cache**: the stage DAG and the cache-registry
  evolution are config-independent, so each ``(workload, input_mb,
  job-list fingerprint)`` compiles once and every candidate evaluation
  replays the immutable :class:`~repro.sparksim.dag.CompiledWorkload`;
* a **candidate-batched fast path** (:meth:`SparkSimulator.run_batch`)
  that costs one stage for N configurations in single numpy passes and
  batches the scheduler's statistics reductions, while preserving one
  rng stream per candidate.  Its contract is *bit-identity*: the
  results equal a loop of :meth:`SparkSimulator.run` exactly, including
  OOM/reject candidates and injected faults (fault-struck candidates
  drop out of the batch and finish on the scalar path).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from ..cloud.cluster import Cluster
from ..cloud.interference import QUIET, Environment
from ..config.constraints import grant_resources
from .costmodel import (
    Calibration,
    build_batch_inputs,
    compute_stage_cost,
    compute_stage_cost_batch,
)
from .dag import CompiledWorkload, compile_workload, fingerprint_jobs
from .executor import ExecutorModel
from .faults import NO_FAULTS, FaultPlan
from .memory import plan_cache
from .metrics import ExecutionResult, StageMetrics
from .scheduler import schedule_stage, schedule_stage_batch

if TYPE_CHECKING:
    from ..config.constraints import ResourceGrant
    from ..workloads.base import Workload
    from .costmodel import StageCost
    from .dag import CompiledStage
    from .rdd import Job

__all__ = ["SparkSimulator"]

#: wall-clock consumed before the cluster manager rejects an unsatisfiable
#: resource request (container negotiation + timeout)
_REJECT_S = 25.0

#: failed task attempts before Spark aborts the stage and the application
_MAX_ATTEMPTS = 4


class SparkSimulator:
    """Simulates Spark application executions.

    Parameters
    ----------
    calibration:
        Cost-model constants; override for ablation studies.
    noise:
        When ``False``, task durations are deterministic (useful for
        model unit tests); benches keep it ``True``.
    fault_plan:
        Optional :class:`~repro.sparksim.faults.FaultPlan`; faults are
        drawn deterministically from each run's seed (never from the
        noise stream), so injected scenarios are reproducible and a
        non-firing plan leaves results bit-identical to no plan.
    plan_cache_size:
        Number of compiled workload plans kept (LRU); 0 disables plan
        caching and recompiles on every run (the throughput benchmark
        uses this to measure the cache's contribution).  Plans are
        immutable and config-independent; the cache only trades memory
        for re-compilation time, never changes results.
    """

    def __init__(self, calibration: Calibration | None = None, noise: bool = True,
                 fault_plan: FaultPlan | None = None, plan_cache_size: int = 64):
        self.calibration = calibration or Calibration()
        self.noise = noise
        self.fault_plan = fault_plan
        if plan_cache_size < 0:
            raise ValueError("plan_cache_size must be >= 0")
        self.plan_cache_size = plan_cache_size
        # Identity tier: (id(workload), input_mb) -> (workload, compiled).
        # Holding the workload object strongly pins its id, so a hit is
        # guaranteed to be the same object (ids are only reused after
        # collection).  Content tier: (name, input_mb, fingerprint) ->
        # compiled, so equal-content workload *objects* share one plan
        # while same-named workloads with different job lists never
        # collide (the fingerprint is part of the key).
        self._plan_cache_by_id: OrderedDict = OrderedDict()
        self._plan_cache_by_content: OrderedDict = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # --- plan cache -------------------------------------------------------
    def compile_workload(self, workload: Workload,
                         input_mb: float) -> CompiledWorkload:
        """Return the (cached) compiled plan for ``workload`` at ``input_mb``.

        Assumes ``workload.jobs()`` is pure (same object, same job list)
        — true for every workload in :mod:`repro.workloads`.  Distinct
        objects fall through to a content fingerprint, so two same-named
        workloads with different job lists get distinct plans.
        """
        if self.plan_cache_size == 0:
            self.plan_cache_misses += 1
            return compile_workload(
                workload.name, input_mb, workload.jobs(input_mb),
            )
        id_key = (id(workload), float(input_mb))
        hit = self._plan_cache_by_id.get(id_key)
        if hit is not None and hit[0] is workload:
            self._plan_cache_by_id.move_to_end(id_key)
            self.plan_cache_hits += 1
            return hit[1]
        jobs = workload.jobs(input_mb)
        fingerprint = fingerprint_jobs(jobs)
        content_key = (workload.name, float(input_mb), fingerprint)
        compiled = self._plan_cache_by_content.get(content_key)
        if compiled is not None:
            self._plan_cache_by_content.move_to_end(content_key)
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1
            compiled = compile_workload(
                workload.name, input_mb, jobs, fingerprint=fingerprint,
            )
            self._plan_cache_by_content[content_key] = compiled
            while len(self._plan_cache_by_content) > self.plan_cache_size:
                self._plan_cache_by_content.popitem(last=False)
        self._plan_cache_by_id[id_key] = (workload, compiled)
        while len(self._plan_cache_by_id) > self.plan_cache_size:
            self._plan_cache_by_id.popitem(last=False)
        return compiled

    # --- single-candidate path -------------------------------------------
    def run(self, workload: Workload, input_mb: float, cluster: Cluster,
            config: Mapping[str, Any],
            env: Environment = QUIET, seed: int = 0) -> ExecutionResult:
        """Execute ``workload`` at ``input_mb`` scale and return metrics."""
        compiled = self.compile_workload(workload, input_mb)
        return self._run_compiled(compiled, cluster, config, env=env, seed=seed)

    def run_jobs(self, name: str, input_mb: float, jobs: Sequence[Job],
                 cluster: Cluster, config: Mapping[str, Any],
                 env: Environment = QUIET, seed: int = 0) -> ExecutionResult:
        """Execute an explicit job list (compiled fresh, uncached)."""
        compiled = compile_workload(name, input_mb, jobs)
        return self._run_compiled(compiled, cluster, config, env=env, seed=seed)

    def _run_compiled(self, compiled: CompiledWorkload, cluster: Cluster,
                      config: Mapping[str, Any], env: Environment = QUIET,
                      seed: int = 0) -> ExecutionResult:
        calib = self.calibration
        name = compiled.name
        input_mb = compiled.input_mb
        rng = np.random.default_rng(seed)
        # Faults ride their own (salt, seed)-keyed stream: drawing them
        # never perturbs the noise rng, so a non-firing plan is a no-op.
        faults = (
            self.fault_plan.draw(seed) if self.fault_plan is not None
            else NO_FAULTS
        )
        injected: list[str] = []
        if faults.env_multiplier > 1.0:
            env = faults.spike_env(env)
            injected.append(f"env_spike:x{faults.env_multiplier:g}")
        grant = grant_resources(config, cluster)
        if grant.executors < 1:
            return ExecutionResult(
                workload=name, input_mb=input_mb, runtime_s=_REJECT_S,
                success=False, executors_granted=0,
                executors_requested=grant.requested_executors,
                failure_reason="executor container does not fit any node",
                environment_factor=env.combined(),
                faults_injected=tuple(injected),
            )

        executor = ExecutorModel.from_config(config)
        # spark.task.cpus reserves multiple cores per task: the number of
        # concurrently running tasks is executors x (cores // task.cpus).
        slots = max(1, grant.executors * executor.concurrent_tasks)
        runtime = calib.app_startup_base_s + calib.app_startup_per_executor_s * grant.executors
        stage_metrics: list[StageMetrics] = []
        tasks_of_stage: dict[int, int] = {}
        ordinal = 0          # executed-stage counter; targets stage faults

        for cjob in compiled.jobs:
            runtime += calib.job_submit_s
            for cstage in cjob.stages:
                stage = cstage.stage
                cache = plan_cache(
                    cstage.cached_mb, grant.executors, executor, config,
                    recompute_cpu_s_per_mb=cstage.recompute_cpu_s_per_mb,
                    recompute_io_mb_per_mb=cstage.recompute_io_mb_per_mb,
                )
                num_map_tasks = sum(
                    tasks_of_stage.get(dep, 0) for dep in stage.depends_on
                )
                cost = compute_stage_cost(
                    stage, config, cluster, grant, executor, cache, env,
                    num_map_tasks=num_map_tasks, calib=calib,
                )
                tasks_of_stage[stage.stage_id] = cost.num_tasks

                if ordinal == faults.oom_stage:
                    # Injected container kill: retries then application abort,
                    # the same expensive crash shape as a genuine OOM.
                    wasted = cost.task.total_s * _MAX_ATTEMPTS + cost.driver_s
                    runtime += wasted
                    stage_metrics.append(self._failed_stage(stage, cost, wasted))
                    injected.append(f"oom_kill:stage{ordinal}")
                    return ExecutionResult(
                        workload=name, input_mb=input_mb, runtime_s=runtime,
                        success=False, stages=stage_metrics,
                        executors_granted=grant.executors,
                        executors_requested=grant.requested_executors,
                        total_slots=slots,
                        failure_reason=(
                            f"fault-injected OOM kill in stage "
                            f"{stage.stage_id} ({stage.name})"
                        ),
                        environment_factor=env.combined(),
                        faults_injected=tuple(injected),
                    )

                if cost.task.oom:
                    # Retries then application abort.
                    wasted = cost.task.total_s * _MAX_ATTEMPTS + cost.driver_s
                    runtime += wasted
                    stage_metrics.append(self._failed_stage(stage, cost, wasted))
                    return ExecutionResult(
                        workload=name, input_mb=input_mb, runtime_s=runtime,
                        success=False, stages=stage_metrics,
                        executors_granted=grant.executors,
                        executors_requested=grant.requested_executors,
                        total_slots=slots,
                        failure_reason=(
                            f"OOM in stage {stage.stage_id} ({stage.name}): "
                            f"task working set {cost.task.spilled_mb + 0:.0f}MB+ "
                            f"exceeds executor execution memory"
                        ),
                        environment_factor=env.combined(),
                        faults_injected=tuple(injected),
                    )

                schedule = schedule_stage(
                    cost.num_tasks, cost.task.total_s, slots,
                    config, rng, calib=calib, noise=self.noise,
                )
                makespan = schedule.makespan_s
                if ordinal == faults.straggler_stage:
                    makespan *= faults.straggler_factor
                    injected.append(
                        f"straggler:stage{ordinal}:x{faults.straggler_factor:g}"
                    )
                if ordinal == faults.loss_stage and faults.loss_fraction > 0.0:
                    # In-flight work on the lost executors re-runs, and every
                    # later stage schedules onto the surviving slots only.
                    makespan += schedule.makespan_s * faults.loss_fraction
                    lost = min(
                        grant.executors - 1,
                        max(1, round(grant.executors * faults.loss_fraction)),
                    )
                    if lost > 0:
                        slots = max(
                            1,
                            (grant.executors - lost) * executor.concurrent_tasks,
                        )
                    injected.append(f"executor_loss:stage{ordinal}:{lost}")
                elapsed = makespan + cost.driver_s
                runtime += elapsed
                ordinal += 1
                n = cost.num_tasks
                stage_metrics.append(
                    StageMetrics(
                        stage_id=stage.stage_id,
                        name=stage.name,
                        num_tasks=n,
                        duration_s=elapsed,
                        input_mb=cost.input_mb,
                        cached_read_mb=cost.cached_read_mb,
                        shuffle_read_mb=cost.shuffle_read_mb,
                        shuffle_write_mb=cost.shuffle_write_mb,
                        spill_mb=cost.spill_mb_total,
                        cpu_time_s=cost.task.cpu_s * n,
                        gc_time_s=cost.task.gc_s * n,
                        io_time_s=cost.task.disk_s * n,
                        net_time_s=cost.task.net_s * n,
                        task_metrics=schedule.task_metrics,
                        output_mb=stage.output_mb if stage.writes_output else 0.0,
                        writes_output=stage.writes_output,
                    )
                )

        if self.noise:
            runtime *= float(
                rng.lognormal(
                    mean=-0.5 * calib.run_noise_sigma**2,
                    sigma=calib.run_noise_sigma,
                )
            )
        return ExecutionResult(
            workload=name, input_mb=input_mb, runtime_s=runtime, success=True,
            stages=stage_metrics,
            executors_granted=grant.executors,
            executors_requested=grant.requested_executors,
            total_slots=slots,
            environment_factor=env.combined(),
            faults_injected=tuple(injected),
        )

    # --- candidate-batched path ------------------------------------------
    def run_batch(self, workload: Workload, input_mb: float, cluster: Cluster,
                  configs: Sequence[Mapping[str, Any]],
                  envs: Sequence[Environment] | None = None,
                  seeds: Sequence[int] | None = None) -> list[ExecutionResult]:
        """Evaluate many configurations of one workload; bit-identical to
        ``[self.run(workload, input_mb, cluster, c, env=e, seed=s) ...]``.

        ``envs``/``seeds`` default to ``QUIET``/``0`` for every candidate
        (matching :meth:`run`'s defaults).  Candidates struck by
        simulated faults finish on the scalar path; everything else runs
        through one vectorized cost sweep per stage.
        """
        configs = list(configs)
        n = len(configs)
        envs = [QUIET] * n if envs is None else list(envs)
        seeds = [0] * n if seeds is None else list(seeds)
        if len(envs) != n or len(seeds) != n:
            raise ValueError("configs, envs and seeds must have equal length")
        if n == 0:
            return []
        compiled = self.compile_workload(workload, input_mb)
        if n == 1:
            return [self._run_compiled(compiled, cluster, configs[0],
                                       env=envs[0], seed=seeds[0])]
        return self._run_batch_compiled(compiled, cluster, configs, envs, seeds)

    def _run_batch_compiled(self, compiled: CompiledWorkload, cluster: Cluster,
                            configs: Sequence[Mapping[str, Any]],
                            envs: Sequence[Environment],
                            seeds: Sequence[int]) -> list[ExecutionResult]:
        calib = self.calibration
        n = len(configs)
        results: list[ExecutionResult | None] = [None] * n

        # Screen candidates: simulated faults (stage targets, env spikes)
        # perturb control flow mid-run, so those candidates take the
        # scalar path; rejected grants fail before any rng draw and are
        # also handled scalar (it is the same early-exit code).
        # worker_crash is an infrastructure fault the simulator ignores.
        scalar: list[int] = []
        active: list[int] = []
        grants = {}
        for i in range(n):
            faults = (
                self.fault_plan.draw(seeds[i]) if self.fault_plan is not None
                else NO_FAULTS
            )
            if (faults.loss_stage >= 0 or faults.straggler_stage >= 0
                    or faults.oom_stage >= 0 or faults.env_multiplier > 1.0):
                scalar.append(i)
                continue
            grant = grant_resources(configs[i], cluster)
            if grant.executors < 1:
                scalar.append(i)
                continue
            grants[i] = grant
            active.append(i)

        if active:
            self._run_active_batch(compiled, cluster, configs, envs, seeds,
                                   active, grants, results)
        for i in scalar:
            results[i] = self._run_compiled(compiled, cluster, configs[i],
                                            env=envs[i], seed=seeds[i])
        # every index is filled by exactly one of the three paths above,
        # so the Optional slots are all resolved by now
        return results  # type: ignore[return-value]

    def _run_active_batch(self, compiled: CompiledWorkload, cluster: Cluster,
                          configs: Sequence[Mapping[str, Any]],
                          envs: Sequence[Environment], seeds: Sequence[int],
                          active: Sequence[int],
                          grants: Sequence[ResourceGrant],
                          results: list[ExecutionResult | None]) -> None:
        """Vectorized sweep over the fault-free, granted candidates."""
        calib = self.calibration
        m = len(active)
        cfgs = [configs[i] for i in active]
        grant_list = [grants[i] for i in active]
        executors = [ExecutorModel.from_config(c) for c in cfgs]
        b = build_batch_inputs(cfgs, cluster, grant_list, executors,
                               [envs[i] for i in active])
        rngs = [np.random.default_rng(seeds[i]) for i in active]
        slots = np.maximum(
            1, b.executors * b.concurrent
        )
        runtime = (
            calib.app_startup_base_s
            + calib.app_startup_per_executor_s * b.executors
        )
        runtime = np.asarray(runtime, dtype=float)
        alive = np.ones(m, dtype=bool)
        stage_lists: list[list[StageMetrics]] = [[] for _ in range(m)]
        tasks_of_stage: dict[int, np.ndarray] = {}
        zero_tasks = np.zeros(m, dtype=np.int64)

        for cjob in compiled.jobs:
            runtime = runtime + calib.job_submit_s
            for cstage in cjob.stages:
                if not alive.any():
                    break
                stage = cstage.stage
                num_map = zero_tasks
                for dep in stage.depends_on:
                    num_map = num_map + tasks_of_stage.get(dep, zero_tasks)
                cost = compute_stage_cost_batch(
                    stage, b, cstage.cached_mb,
                    cstage.recompute_cpu_s_per_mb,
                    cstage.recompute_io_mb_per_mb,
                    num_map, calib,
                )
                tasks_of_stage[stage.stage_id] = cost.num_tasks

                newly_oom = alive & cost.oom
                for k in np.flatnonzero(newly_oom):
                    k = int(k)
                    # Retries then application abort — same arithmetic as
                    # the scalar early exit, from the batch arrays.
                    wasted = float(cost.total_s[k]) * _MAX_ATTEMPTS + float(cost.driver_s[k])
                    runtime[k] += wasted
                    stage_lists[k].append(StageMetrics(
                        stage_id=stage.stage_id, name=stage.name,
                        num_tasks=int(cost.num_tasks[k]), duration_s=wasted,
                        input_mb=stage.input_mb,
                        cached_read_mb=stage.cached_read_mb,
                        shuffle_read_mb=stage.shuffle_read_mb,
                        shuffle_write_mb=stage.shuffle_write_mb,
                        spill_mb=0.0, cpu_time_s=0.0, gc_time_s=0.0,
                        io_time_s=0.0, net_time_s=0.0, failed=True,
                    ))
                    results[active[k]] = ExecutionResult(
                        workload=compiled.name, input_mb=compiled.input_mb,
                        runtime_s=float(runtime[k]), success=False,
                        stages=stage_lists[k],
                        executors_granted=int(b.executors[k]),
                        executors_requested=int(b.requested[k]),
                        total_slots=int(slots[k]),
                        failure_reason=(
                            f"OOM in stage {stage.stage_id} ({stage.name}): "
                            f"task working set {float(cost.spilled_mb[k]) + 0:.0f}MB+ "
                            f"exceeds executor execution memory"
                        ),
                        environment_factor=envs[active[k]].combined(),
                        faults_injected=(),
                    )
                    alive[k] = False

                live = np.flatnonzero(alive)
                if live.size == 0:
                    continue
                schedules = schedule_stage_batch(
                    cost.num_tasks[live], cost.total_s[live], slots[live],
                    b.speculation[live], b.spec_multiplier[live],
                    b.spec_quantile[live], [rngs[k] for k in live],
                    calib=calib, noise=self.noise,
                )
                makespans = np.array([s.makespan_s for s in schedules])
                elapsed = makespans + cost.driver_s[live]
                runtime[live] = runtime[live] + elapsed
                # One bulk unbox per array instead of a numpy scalar
                # lookup per field per candidate; tolist() yields the
                # same Python floats/ints bit for bit.
                elapsed_l = elapsed.tolist()
                ntasks_l = cost.num_tasks[live].tolist()
                spill_l = cost.spill_mb_total[live].tolist()
                cpu_l = cost.cpu_s[live].tolist()
                gc_l = cost.gc_s[live].tolist()
                disk_l = cost.disk_s[live].tolist()
                net_l = cost.net_s[live].tolist()
                out_mb = stage.output_mb if stage.writes_output else 0.0
                for pos, k in enumerate(live.tolist()):
                    n_k = ntasks_l[pos]
                    stage_lists[k].append(StageMetrics(
                        stage_id=stage.stage_id,
                        name=stage.name,
                        num_tasks=n_k,
                        duration_s=elapsed_l[pos],
                        input_mb=stage.input_mb,
                        cached_read_mb=stage.cached_read_mb,
                        shuffle_read_mb=stage.shuffle_read_mb,
                        shuffle_write_mb=stage.shuffle_write_mb,
                        spill_mb=spill_l[pos],
                        cpu_time_s=cpu_l[pos] * n_k,
                        gc_time_s=gc_l[pos] * n_k,
                        io_time_s=disk_l[pos] * n_k,
                        net_time_s=net_l[pos] * n_k,
                        task_metrics=schedules[pos].task_metrics,
                        output_mb=out_mb,
                        writes_output=stage.writes_output,
                    ))

        sigma = calib.run_noise_sigma
        for k in np.flatnonzero(alive):
            k = int(k)
            final = float(runtime[k])
            if self.noise:
                final *= float(
                    rngs[k].lognormal(mean=-0.5 * sigma**2, sigma=sigma)
                )
            results[active[k]] = ExecutionResult(
                workload=compiled.name, input_mb=compiled.input_mb,
                runtime_s=final, success=True, stages=stage_lists[k],
                executors_granted=int(b.executors[k]),
                executors_requested=int(b.requested[k]),
                total_slots=int(slots[k]),
                environment_factor=envs[active[k]].combined(),
                faults_injected=(),
            )

    @staticmethod
    def _failed_stage(stage: CompiledStage, cost: StageCost,
                      wasted: float) -> StageMetrics:
        return StageMetrics(
            stage_id=stage.stage_id, name=stage.name, num_tasks=cost.num_tasks,
            duration_s=wasted, input_mb=cost.input_mb,
            cached_read_mb=cost.cached_read_mb,
            shuffle_read_mb=cost.shuffle_read_mb,
            shuffle_write_mb=cost.shuffle_write_mb,
            spill_mb=0.0, cpu_time_s=0.0, gc_time_s=0.0, io_time_s=0.0,
            net_time_s=0.0, failed=True,
        )
