"""The Spark application simulator.

Executes a workload (a sequence of jobs over RDD lineages) on a virtual
cluster under a given configuration and interference environment,
producing an :class:`~repro.sparksim.metrics.ExecutionResult` with
Spark-style per-stage metrics.

The execution pipeline mirrors Fig. 2 of the paper: jobs are compiled to
stage DAGs (:mod:`repro.sparksim.dag`), stages run in topological order,
each stage's tasks are costed analytically
(:mod:`repro.sparksim.costmodel`) and scheduled onto granted executor
slots (:mod:`repro.sparksim.scheduler`).  Configurations that do not fit
the cluster fail fast; tasks whose working set cannot even spill OOM and
fail the application after retries — both produce the expensive crash
behaviour Section IV of the paper describes.
"""

from __future__ import annotations

import numpy as np

from ..cloud.cluster import Cluster
from ..cloud.interference import QUIET, Environment
from ..config.constraints import grant_resources
from .costmodel import Calibration, compute_stage_cost
from .dag import CacheRegistry, compile_job
from .executor import ExecutorModel
from .faults import NO_FAULTS, FaultPlan
from .memory import plan_cache
from .metrics import ExecutionResult, StageMetrics
from .scheduler import schedule_stage

__all__ = ["SparkSimulator"]

#: wall-clock consumed before the cluster manager rejects an unsatisfiable
#: resource request (container negotiation + timeout)
_REJECT_S = 25.0

#: failed task attempts before Spark aborts the stage and the application
_MAX_ATTEMPTS = 4


class SparkSimulator:
    """Simulates Spark application executions.

    Parameters
    ----------
    calibration:
        Cost-model constants; override for ablation studies.
    noise:
        When ``False``, task durations are deterministic (useful for
        model unit tests); benches keep it ``True``.
    fault_plan:
        Optional :class:`~repro.sparksim.faults.FaultPlan`; faults are
        drawn deterministically from each run's seed (never from the
        noise stream), so injected scenarios are reproducible and a
        non-firing plan leaves results bit-identical to no plan.
    """

    def __init__(self, calibration: Calibration | None = None, noise: bool = True,
                 fault_plan: FaultPlan | None = None):
        self.calibration = calibration or Calibration()
        self.noise = noise
        self.fault_plan = fault_plan

    def run(self, workload, input_mb: float, cluster: Cluster, config,
            env: Environment = QUIET, seed: int = 0) -> ExecutionResult:
        """Execute ``workload`` at ``input_mb`` scale and return metrics."""
        jobs = workload.jobs(input_mb)
        return self.run_jobs(workload.name, input_mb, jobs, cluster, config,
                             env=env, seed=seed)

    def run_jobs(self, name: str, input_mb: float, jobs, cluster: Cluster,
                 config, env: Environment = QUIET, seed: int = 0) -> ExecutionResult:
        calib = self.calibration
        rng = np.random.default_rng(seed)
        # Faults ride their own (salt, seed)-keyed stream: drawing them
        # never perturbs the noise rng, so a non-firing plan is a no-op.
        faults = (
            self.fault_plan.draw(seed) if self.fault_plan is not None
            else NO_FAULTS
        )
        injected: list[str] = []
        if faults.env_multiplier > 1.0:
            env = faults.spike_env(env)
            injected.append(f"env_spike:x{faults.env_multiplier:g}")
        grant = grant_resources(config, cluster)
        if grant.executors < 1:
            return ExecutionResult(
                workload=name, input_mb=input_mb, runtime_s=_REJECT_S,
                success=False, executors_granted=0,
                executors_requested=grant.requested_executors,
                failure_reason="executor container does not fit any node",
                environment_factor=env.combined(),
                faults_injected=tuple(injected),
            )

        executor = ExecutorModel.from_config(config)
        # spark.task.cpus reserves multiple cores per task: the number of
        # concurrently running tasks is executors x (cores // task.cpus).
        slots = max(1, grant.executors * executor.concurrent_tasks)
        runtime = calib.app_startup_base_s + calib.app_startup_per_executor_s * grant.executors
        registry = CacheRegistry()
        stage_metrics: list[StageMetrics] = []
        tasks_of_stage: dict[int, int] = {}
        next_stage_id = 0
        ordinal = 0          # executed-stage counter; targets stage faults

        for job in jobs:
            runtime += calib.job_submit_s
            plan = compile_job(job, registry, first_stage_id=next_stage_id)
            next_stage_id += plan.num_stages
            for stage in plan.topological():
                cache = plan_cache(
                    registry.total_cached_mb, grant.executors, executor, config,
                    recompute_cpu_s_per_mb=registry.mean_recompute_cpu_s_per_mb(),
                    recompute_io_mb_per_mb=registry.mean_recompute_io_mb_per_mb(),
                )
                num_map_tasks = sum(
                    tasks_of_stage.get(dep, 0) for dep in stage.depends_on
                )
                cost = compute_stage_cost(
                    stage, config, cluster, grant, executor, cache, env,
                    num_map_tasks=num_map_tasks, calib=calib,
                )
                tasks_of_stage[stage.stage_id] = cost.num_tasks

                if ordinal == faults.oom_stage:
                    # Injected container kill: retries then application abort,
                    # the same expensive crash shape as a genuine OOM.
                    wasted = cost.task.total_s * _MAX_ATTEMPTS + cost.driver_s
                    runtime += wasted
                    stage_metrics.append(self._failed_stage(stage, cost, wasted))
                    injected.append(f"oom_kill:stage{ordinal}")
                    return ExecutionResult(
                        workload=name, input_mb=input_mb, runtime_s=runtime,
                        success=False, stages=stage_metrics,
                        executors_granted=grant.executors,
                        executors_requested=grant.requested_executors,
                        total_slots=slots,
                        failure_reason=(
                            f"fault-injected OOM kill in stage "
                            f"{stage.stage_id} ({stage.name})"
                        ),
                        environment_factor=env.combined(),
                        faults_injected=tuple(injected),
                    )

                if cost.task.oom:
                    # Retries then application abort.
                    wasted = cost.task.total_s * _MAX_ATTEMPTS + cost.driver_s
                    runtime += wasted
                    stage_metrics.append(self._failed_stage(stage, cost, wasted))
                    return ExecutionResult(
                        workload=name, input_mb=input_mb, runtime_s=runtime,
                        success=False, stages=stage_metrics,
                        executors_granted=grant.executors,
                        executors_requested=grant.requested_executors,
                        total_slots=slots,
                        failure_reason=(
                            f"OOM in stage {stage.stage_id} ({stage.name}): "
                            f"task working set {cost.task.spilled_mb + 0:.0f}MB+ "
                            f"exceeds executor execution memory"
                        ),
                        environment_factor=env.combined(),
                        faults_injected=tuple(injected),
                    )

                schedule = schedule_stage(
                    cost.num_tasks, cost.task.total_s, slots,
                    config, rng, calib=calib, noise=self.noise,
                )
                makespan = schedule.makespan_s
                if ordinal == faults.straggler_stage:
                    makespan *= faults.straggler_factor
                    injected.append(
                        f"straggler:stage{ordinal}:x{faults.straggler_factor:g}"
                    )
                if ordinal == faults.loss_stage and faults.loss_fraction > 0.0:
                    # In-flight work on the lost executors re-runs, and every
                    # later stage schedules onto the surviving slots only.
                    makespan += schedule.makespan_s * faults.loss_fraction
                    lost = min(
                        grant.executors - 1,
                        max(1, round(grant.executors * faults.loss_fraction)),
                    )
                    if lost > 0:
                        slots = max(
                            1,
                            (grant.executors - lost) * executor.concurrent_tasks,
                        )
                    injected.append(f"executor_loss:stage{ordinal}:{lost}")
                elapsed = makespan + cost.driver_s
                runtime += elapsed
                ordinal += 1
                n = cost.num_tasks
                stage_metrics.append(
                    StageMetrics(
                        stage_id=stage.stage_id,
                        name=stage.name,
                        num_tasks=n,
                        duration_s=elapsed,
                        input_mb=cost.input_mb,
                        cached_read_mb=cost.cached_read_mb,
                        shuffle_read_mb=cost.shuffle_read_mb,
                        shuffle_write_mb=cost.shuffle_write_mb,
                        spill_mb=cost.spill_mb_total,
                        cpu_time_s=cost.task.cpu_s * n,
                        gc_time_s=cost.task.gc_s * n,
                        io_time_s=cost.task.disk_s * n,
                        net_time_s=cost.task.net_s * n,
                        task_metrics=schedule.task_metrics,
                        output_mb=stage.output_mb if stage.writes_output else 0.0,
                        writes_output=stage.writes_output,
                    )
                )
                for rdd_id, mb, record_bytes in stage.materializes:
                    registry.materialize(
                        rdd_id, mb, record_bytes,
                        recompute_cpu_s_per_mb=stage.recompute_cpu_s_per_mb,
                        recompute_io_mb_per_mb=stage.recompute_io_mb_per_mb,
                    )
            for rdd in job.unpersist_after:
                registry.evict(rdd.id)

        if self.noise:
            runtime *= float(
                rng.lognormal(
                    mean=-0.5 * calib.run_noise_sigma**2,
                    sigma=calib.run_noise_sigma,
                )
            )
        return ExecutionResult(
            workload=name, input_mb=input_mb, runtime_s=runtime, success=True,
            stages=stage_metrics,
            executors_granted=grant.executors,
            executors_requested=grant.requested_executors,
            total_slots=slots,
            environment_factor=env.combined(),
            faults_injected=tuple(injected),
        )

    @staticmethod
    def _failed_stage(stage, cost, wasted: float) -> StageMetrics:
        return StageMetrics(
            stage_id=stage.stage_id, name=stage.name, num_tasks=cost.num_tasks,
            duration_s=wasted, input_mb=cost.input_mb,
            cached_read_mb=cost.cached_read_mb,
            shuffle_read_mb=cost.shuffle_read_mb,
            shuffle_write_mb=cost.shuffle_write_mb,
            spill_mb=0.0, cpu_time_s=0.0, gc_time_s=0.0, io_time_s=0.0,
            net_time_s=0.0, failed=True,
        )
