"""RDD lineage model.

Implements the programming-model half of the paper's Fig. 2: workloads
are written against an RDD API (sources, narrow transformations, wide
shuffles, caching, actions); invoking an action yields a :class:`Job`
whose lineage the DAG compiler (:mod:`repro.sparksim.dag`) cuts into
stages at wide dependencies.

Sizes are logical data volumes in MB; ``cpu_s_per_mb`` is the CPU cost of
applying an operator per MB of *its input* on a reference core.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

__all__ = ["RDD", "Job"]

_ids = itertools.count()


@dataclass(frozen=True)
class _Op:
    """One transformation applied within an RDD's pipelined chain."""

    kind: str             # "source" | "narrow" | "wide"
    name: str
    cpu_s_per_mb: float   # cost per MB of op input
    size_ratio: float     # output MB / input MB


class RDD:
    """A node in the lineage graph.

    Narrow transformations extend the current pipelined chain; wide
    transformations start a new RDD whose parent dependency crosses a
    shuffle boundary.
    """

    def __init__(self, *, op: _Op, parents: tuple["RDD", ...], input_mb: float,
                 partitions: int | None, record_bytes: float,
                 shuffle_partitions: int | None = None):
        self.id = next(_ids)
        self.op = op
        self.parents = parents
        self.input_mb = input_mb          # MB entering this op
        self.size_mb = input_mb * op.size_ratio
        self.partitions = partitions      # None = use spark.default.parallelism
        self.record_bytes = record_bytes
        self.shuffle_partitions = shuffle_partitions
        self.cached = False
        #: fraction of in-memory size that cannot be spilled incrementally
        #: (hash-aggregation state, single-record buffers); set by wide ops.
        self.unspillable_fraction = 0.05

    # --- constructors ----------------------------------------------------
    @staticmethod
    def source(name: str, size_mb: float, partitions: int | None = None,
               record_bytes: float = 100.0) -> "RDD":
        """An external dataset (HDFS/S3).  Default partitioning: 128 MB splits."""
        if size_mb <= 0:
            raise ValueError("source size must be positive")
        if partitions is None:
            partitions = max(1, int(round(size_mb / 128.0)))
        op = _Op("source", name, cpu_s_per_mb=0.0, size_ratio=1.0)
        return RDD(op=op, parents=(), input_mb=size_mb, partitions=partitions,
                   record_bytes=record_bytes)

    # --- narrow transformations ------------------------------------------
    def _narrow(self, name: str, cpu: float, ratio: float,
                record_bytes: float | None = None) -> "RDD":
        op = _Op("narrow", name, cpu_s_per_mb=cpu, size_ratio=ratio)
        child = RDD(op=op, parents=(self,), input_mb=self.size_mb,
                    partitions=self.partitions,
                    record_bytes=record_bytes or self.record_bytes)
        child.unspillable_fraction = self.unspillable_fraction
        return child

    def map(self, name: str = "map", cpu_s_per_mb: float = 0.01,
            size_ratio: float = 1.0) -> "RDD":
        return self._narrow(name, cpu_s_per_mb, size_ratio)

    def flat_map(self, name: str = "flatMap", cpu_s_per_mb: float = 0.02,
                 size_ratio: float = 1.5) -> "RDD":
        return self._narrow(name, cpu_s_per_mb, size_ratio)

    def filter(self, name: str = "filter", cpu_s_per_mb: float = 0.004,
               keep: float = 0.5) -> "RDD":
        if not 0 < keep <= 1:
            raise ValueError("keep fraction must be in (0, 1]")
        return self._narrow(name, cpu_s_per_mb, keep)

    # --- wide transformations ---------------------------------------------
    def _wide(self, name: str, cpu: float, ratio: float,
              partitions: int | None, unspillable: float) -> "RDD":
        op = _Op("wide", name, cpu_s_per_mb=cpu, size_ratio=ratio)
        child = RDD(op=op, parents=(self,), input_mb=self.size_mb,
                    partitions=partitions, record_bytes=self.record_bytes,
                    shuffle_partitions=partitions)
        child.unspillable_fraction = unspillable
        return child

    def reduce_by_key(self, name: str = "reduceByKey", cpu_s_per_mb: float = 0.015,
                      size_ratio: float = 0.3,
                      partitions: int | None = None) -> "RDD":
        """Map-side combining: shuffles ``size_ratio`` of the input."""
        return self._wide(name, cpu_s_per_mb, size_ratio, partitions, unspillable=0.10)

    def group_by_key(self, name: str = "groupByKey", cpu_s_per_mb: float = 0.012,
                     partitions: int | None = None) -> "RDD":
        """No map-side combining: the whole dataset crosses the shuffle."""
        return self._wide(name, cpu_s_per_mb, 1.0, partitions, unspillable=0.30)

    def sort_by(self, name: str = "sortBy", cpu_s_per_mb: float = 0.025,
                partitions: int | None = None) -> "RDD":
        return self._wide(name, cpu_s_per_mb, 1.0, partitions, unspillable=0.12)

    def join(self, other: "RDD", name: str = "join", cpu_s_per_mb: float = 0.02,
             partitions: int | None = None) -> "RDD":
        """Shuffle join of two lineages."""
        op = _Op("wide", name, cpu_s_per_mb=cpu_s_per_mb, size_ratio=1.0)
        child = RDD(op=op, parents=(self, other),
                    input_mb=self.size_mb + other.size_mb,
                    partitions=partitions,
                    record_bytes=max(self.record_bytes, other.record_bytes),
                    shuffle_partitions=partitions)
        child.unspillable_fraction = 0.25
        return child

    # --- caching / actions --------------------------------------------------
    def cache(self) -> "RDD":
        """Mark for persistence at the configured storage level."""
        self.cached = True
        return self

    def count(self, name: str = "count") -> "Job":
        return Job(self, action=name, result_mb=0.001)

    def collect(self, name: str = "collect", result_fraction: float = 0.01) -> "Job":
        return Job(self, action=name, result_mb=self.size_mb * result_fraction)

    def save(self, name: str = "saveAsTextFile") -> "Job":
        # Output goes to external storage; only a tiny status result
        # reaches the driver.
        return Job(self, action=name, result_mb=0.001, writes_output=True)

    # ------------------------------------------------------------------------
    def lineage(self) -> list["RDD"]:
        """All ancestors (including self), deduplicated, topological order."""
        seen: dict[int, RDD] = {}

        def visit(node: "RDD") -> None:
            if node.id in seen:
                return
            for p in node.parents:
                visit(p)
            seen[node.id] = node

        visit(self)
        return list(seen.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RDD#{self.id}({self.op.name}, {self.size_mb:.0f}MB)"


@dataclass
class Job:
    """An action applied to an RDD — the unit the DAG scheduler compiles."""

    target: RDD
    action: str
    result_mb: float = 0.0
    writes_output: bool = False
    #: extra driver-side cost of collecting results (s per MB)
    collect_cost_s_per_mb: float = 0.02
    #: RDDs to unpersist once this job completes (iterative workloads
    #: release the previous iteration's cache)
    unpersist_after: tuple = ()

    def then_unpersist(self, *rdds: RDD) -> "Job":
        self.unpersist_after = tuple(rdds)
        return self
