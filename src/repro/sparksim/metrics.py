"""Execution metrics emitted by the simulator.

Shaped after the Spark event-log / REST metrics the paper's provider-side
service would mine: per-stage task statistics, shuffle volumes, spill and
GC time.  The characterization module (:mod:`repro.core.characterization`)
derives workload signatures *only* from these observable metrics, never
from ground-truth workload identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskMetrics", "StageMetrics", "ExecutionResult"]


@dataclass(frozen=True)
class TaskMetrics:
    """Aggregate task-duration statistics for one stage."""

    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float


@dataclass(frozen=True)
class StageMetrics:
    """Observable metrics for one completed (or failed) stage."""

    stage_id: int
    name: str
    num_tasks: int
    duration_s: float
    input_mb: float
    cached_read_mb: float
    shuffle_read_mb: float
    shuffle_write_mb: float
    spill_mb: float
    cpu_time_s: float          # summed task CPU seconds
    gc_time_s: float           # summed GC seconds
    io_time_s: float           # summed disk wait
    net_time_s: float          # summed network wait
    task_metrics: TaskMetrics | None = None
    failed: bool = False
    output_mb: float = 0.0     # written to external storage
    writes_output: bool = False


@dataclass
class ExecutionResult:
    """The outcome of one workload execution under one configuration."""

    workload: str
    input_mb: float
    runtime_s: float
    success: bool
    stages: list[StageMetrics] = field(default_factory=list)
    executors_granted: int = 0
    executors_requested: int = 0
    total_slots: int = 0
    failure_reason: str | None = None
    #: environment (interference) summary factor; 1.0 = quiet
    environment_factor: float = 1.0
    #: audit trail of injected faults that struck this execution
    #: (``"kind:stageN[:detail]"`` entries from :mod:`repro.sparksim.faults`)
    faults_injected: tuple[str, ...] = ()

    # --- aggregates used for characterization -----------------------------
    @property
    def total_input_mb(self) -> float:
        return sum(s.input_mb for s in self.stages)

    @property
    def total_shuffle_mb(self) -> float:
        return sum(s.shuffle_write_mb for s in self.stages)

    @property
    def total_spill_mb(self) -> float:
        return sum(s.spill_mb for s in self.stages)

    @property
    def total_cpu_s(self) -> float:
        return sum(s.cpu_time_s for s in self.stages)

    @property
    def total_gc_s(self) -> float:
        return sum(s.gc_time_s for s in self.stages)

    @property
    def total_io_s(self) -> float:
        return sum(s.io_time_s for s in self.stages)

    @property
    def total_net_s(self) -> float:
        return sum(s.net_time_s for s in self.stages)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    def effective_runtime(self, failure_penalty: float = 4.0,
                          failure_floor_s: float = 3600.0) -> float:
        """Runtime for optimization purposes; failures cost a penalty.

        A crashed execution consumed cluster time and produced nothing —
        tuners see it as ``failure_penalty`` times the wasted wall-clock,
        floored at ``failure_floor_s`` (an hour of fix-execute-debug cycle,
        per the paper's Section IV: "Any failed test execution is expensive
        and has a long fix-execute-debug cycle").  The floor guarantees a
        crash is never preferable to any completed run.
        """
        if self.success:
            return self.runtime_s
        return max(self.runtime_s * failure_penalty, failure_floor_s)
