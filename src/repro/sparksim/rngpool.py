"""Pooled, batch-seeded per-candidate noise generators.

The batch fast path owes every candidate its own
``np.random.default_rng(seed)`` stream — that is the bit-identity
contract with the scalar path.  Constructing one costs ~8-12 µs,
dominated by ``SeedSequence`` entropy mixing and ``PCG64.__init__``: at
batch-path speeds that is a measurable slice of every evaluation.

This module reproduces the *exact* ``default_rng(seed)`` initial state
for a whole batch of seeds in a handful of vectorized uint32 passes:

* ``SeedSequence`` mixes the seed's 32-bit words into a 4-word entropy
  pool with a Weyl-style multiply/xor hash whose evolving hash constant
  is *seed-independent* — so N seeds mix in lock-step as ``(N,)`` uint32
  vectors;
* PCG64's ``srandom`` folds the four output words into its 128-bit
  ``(state, inc)`` pair — two big-int operations per candidate;
* the result is installed into pooled ``PCG64`` bit generators via the
  ``state`` setter (~1 µs), skipping the expensive constructors.

The replicated arithmetic is verified against ``np.random.PCG64`` at
import time for a spread of seeds; if the installed numpy ever changes
its seeding, the pool transparently falls back to plain ``default_rng``
construction, so the fast path can never drift from the contract
silently.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["GeneratorPool", "FAST_SEEDING"]

#: PCG64 (XSL-RR 128/64) LCG multiplier — fixed by the PCG reference
#: implementation numpy vendors.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1

# SeedSequence hash/mix constants (numpy _bit_generator.pyx).  The
# evolving hash constants live as masked Python ints — numpy scalar
# uint32 multiplies warn on overflow, array ops wrap silently.
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MASK32 = 0xFFFFFFFF
_MIX_L = np.uint32(0xCA01F9DD)
_MIX_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_POOL_SIZE = 4

#: seeds above this need >2 entropy words; they take the fallback path
_MAX_FAST_SEED = 2**64


def _seed_words_vec(seeds: Sequence[int]) -> list[np.ndarray]:
    """The four PCG64 seeding words for each seed, as ``(N,)`` uint64.

    Vectorized replica of ``SeedSequence(seed).generate_state(4,
    np.uint64)`` for seeds in ``[0, 2**64)``.  A seed's entropy is its
    little-endian 32-bit words; positions past the entropy length hash
    ``0``, so zero-padding to the 4-word pool size is exact.  The
    evolving hash constants depend only on call order, never on seed
    values, so every per-word operation runs as one ``(N,)`` uint32 op.
    """
    s = np.asarray(seeds, dtype=np.uint64)
    n = s.shape[0]

    hash_const = _INIT_A

    def _hash(value: np.ndarray) -> np.ndarray:
        nonlocal hash_const
        value = value ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_A) & _MASK32
        value = value * np.uint32(hash_const)
        return value ^ (value >> _XSHIFT)

    pool = [
        _hash((s & np.uint64(0xFFFFFFFF)).astype(np.uint32)),
        _hash((s >> np.uint64(32)).astype(np.uint32)),
        _hash(np.zeros(n, dtype=np.uint32)),
        _hash(np.zeros(n, dtype=np.uint32)),
    ]
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src == i_dst:
                continue
            mixed = pool[i_dst] * _MIX_L - _hash(pool[i_src]) * _MIX_R
            pool[i_dst] = mixed ^ (mixed >> _XSHIFT)

    hash_const = _INIT_B
    words32 = []
    for j in range(2 * _POOL_SIZE):
        value = pool[j % _POOL_SIZE] ^ np.uint32(hash_const)
        hash_const = (hash_const * _MULT_B) & _MASK32
        value = value * np.uint32(hash_const)
        words32.append(value ^ (value >> _XSHIFT))
    # uint64 output words are little-endian pairs of uint32 draws
    return [
        words32[2 * j].astype(np.uint64)
        | (words32[2 * j + 1].astype(np.uint64) << np.uint64(32))
        for j in range(4)
    ]


def _srandom(w0: int, w1: int, w2: int, w3: int) -> dict:
    """PCG64 ``(state, inc)`` from its four seeding words.

    Replicates ``pcg_setseq_128_srandom_r``: ``inc = (initseq << 1) | 1``
    and the state is stepped twice around adding ``initstate``.
    """
    initstate = (w0 << 64) | w1
    initseq = (w2 << 64) | w3
    inc = ((initseq << 1) | 1) & _MASK128
    state = inc  # srandom: state = 0; step() -> 0 * MULT + inc
    state = (state + initstate) & _MASK128
    state = (state * _PCG_MULT + inc) & _MASK128  # second step()
    return {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": 0,
        "uinteger": 0,
    }


def _pcg64_state_dict(seed: int) -> dict:
    """The ``PCG64(SeedSequence(seed)).state`` dict, computed directly."""
    words = np.random.SeedSequence(seed).generate_state(4, np.uint64)
    return _srandom(int(words[0]), int(words[1]), int(words[2]),
                    int(words[3]))


def _verify_fast_seeding() -> bool:
    """True when the replicated seeding matches this numpy's ``PCG64``."""
    try:
        probes = [0, 1, 12345, 2**31 - 1, 2**32, 2**63 - 1, 2**64 - 1]
        cols = [w.tolist() for w in _seed_words_vec(probes)]
        for i, seed in enumerate(probes):
            vec_state = _srandom(cols[0][i], cols[1][i], cols[2][i],
                                 cols[3][i])
            if np.random.PCG64(seed).state != vec_state:
                return False
            if _pcg64_state_dict(seed) != vec_state:
                return False
    except Exception:
        return False
    return True


#: whether the arithmetic shortcut is exact on the installed numpy
FAST_SEEDING: bool = _verify_fast_seeding()


class GeneratorPool:
    """A reusable pool of ``np.random.Generator`` objects.

    ``generators(seeds)`` returns one generator per seed, each in the
    exact state ``np.random.default_rng(seed)`` would start in.  The
    underlying ``PCG64`` bit generators are pooled and re-seeded via the
    ``state`` setter from one vectorized seeding sweep, costing ~3 µs
    per candidate instead of ~9 µs.  Generators are only valid until the
    next :meth:`generators` call — the batch path consumes them within
    one ``run_batch`` sweep, which is single-threaded by construction.
    """

    def __init__(self) -> None:
        self._bit_gens: list[np.random.PCG64] = []
        self._gens: list[np.random.Generator] = []

    def generators(self, seeds: Sequence[int]) -> list[np.random.Generator]:
        if not FAST_SEEDING or any(
            not (0 <= seed < _MAX_FAST_SEED) for seed in seeds
        ):
            return [np.random.default_rng(seed) for seed in seeds]
        n = len(seeds)
        while len(self._gens) < n:
            bit_rng = np.random.PCG64(0)  # staticcheck: ignore[RF001] -- placeholder state only: overwritten via the state setter below before any draw
            self._bit_gens.append(bit_rng)
            self._gens.append(np.random.Generator(bit_rng))
        cols = [w.tolist() for w in _seed_words_vec(seeds)]
        for i in range(n):
            self._bit_gens[i].state = _srandom(
                cols[0][i], cols[1][i], cols[2][i], cols[3][i]
            )
        return self._gens[:n]
