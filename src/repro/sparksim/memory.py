"""Memory behaviour: cache planning, spill, GC pressure, OOM detection.

This module produces the configuration-sensitive cliffs the tuning
literature measures: undersized execution memory spills to disk
(multiplying I/O), oversubscribed heaps burn CPU in GC superlinearly, and
working sets that cannot spill at all kill the task — the "plausible but
crashes" configurations the paper warns end-users about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .executor import ExecutorModel
from .shuffle import codec_of, serializer_of

__all__ = ["CachePlan", "plan_cache", "SpillOutcome", "spill_outcome", "gc_fraction"]


@dataclass(frozen=True)
class CachePlan:
    """How much of the requested cached data actually resides in memory."""

    requested_mb: float        # logical data size of all cached RDDs
    footprint_per_mb: float    # in-memory MB per logical MB at this level
    stored_mb: float           # in-memory footprint actually held (per app)
    hit_fraction: float        # fraction of logical data servable from memory
    read_cpu_s_per_mb: float   # deserialization cost on every cached read
    miss_to_disk: bool         # MEMORY_AND_DISK: misses hit local disk, not recompute
    #: lineage-recompute cost of a miss (CPU s/MB and re-read bytes per MB)
    recompute_cpu_s_per_mb: float = 0.02
    recompute_io_mb_per_mb: float = 1.0


def plan_cache(cached_logical_mb: float, executors: int,
               executor: ExecutorModel, config: Mapping,
               recompute_cpu_s_per_mb: float = 0.02,
               recompute_io_mb_per_mb: float = 1.0) -> CachePlan:
    """Fit the cached datasets into aggregate storage memory.

    ``MEMORY_ONLY`` stores deserialized objects (large footprint, free
    reads); ``MEMORY_ONLY_SER`` stores serialized bytes (small footprint,
    CPU on every read, further shrunk by ``spark.rdd.compress``);
    ``MEMORY_AND_DISK`` overflows to local disk instead of dropping
    partitions.
    """
    if cached_logical_mb < 0:
        raise ValueError("cached_logical_mb must be non-negative")
    level = config.get("spark.storage.level", "MEMORY_ONLY")
    ser = serializer_of(config)
    read_cpu = 0.0
    if level == "MEMORY_ONLY":
        footprint = ser.expansion * 0.9  # objects, no per-read deserialization
    else:
        footprint = ser.serialized_ratio
        read_cpu = ser.deserialize_s_per_mb
        if config.get("spark.rdd.compress", False):
            codec = codec_of(config)
            footprint *= codec.ratio + 0.1
            read_cpu += codec.decompress_s_per_mb
    if level == "MEMORY_AND_DISK":
        footprint = ser.expansion * 0.9  # deserialized in memory, serialized on disk
        read_cpu = 0.0

    capacity = executor.storage_capacity_mb() * max(1, executors)
    needed = cached_logical_mb * footprint
    stored = min(needed, capacity)
    hit = 1.0 if needed == 0 else stored / needed
    return CachePlan(
        requested_mb=cached_logical_mb,
        footprint_per_mb=footprint,
        stored_mb=stored,
        hit_fraction=hit,
        read_cpu_s_per_mb=read_cpu,
        miss_to_disk=(level == "MEMORY_AND_DISK"),
        recompute_cpu_s_per_mb=recompute_cpu_s_per_mb,
        recompute_io_mb_per_mb=recompute_io_mb_per_mb,
    )


@dataclass(frozen=True)
class SpillOutcome:
    """Spill behaviour of one task given its working set."""

    working_set_mb: float
    available_mb: float
    spilled_mb: float      # logical MB written+read back to disk
    merge_passes: int      # extra merge rounds over spilled runs
    oom: bool


def spill_outcome(working_set_mb: float, available_mb: float,
                  unspillable_fraction: float) -> SpillOutcome:
    """Decide whether a task fits, spills, or dies.

    The unspillable floor models aggregation hash maps and record buffers
    that must be heap-resident: when even that floor exceeds the per-task
    execution memory, the task OOMs (Spark would retry and then fail the
    stage).
    """
    if working_set_mb < 0 or available_mb < 0:
        raise ValueError("sizes must be non-negative")
    floor = 32.0 + working_set_mb * unspillable_fraction
    if available_mb < floor:
        return SpillOutcome(working_set_mb, available_mb,
                            spilled_mb=0.0, merge_passes=0, oom=True)
    if working_set_mb <= available_mb:
        return SpillOutcome(working_set_mb, available_mb,
                            spilled_mb=0.0, merge_passes=0, oom=False)
    spilled = working_set_mb - available_mb
    passes = int(working_set_mb // max(available_mb, 1.0))
    return SpillOutcome(working_set_mb, available_mb,
                        spilled_mb=spilled, merge_passes=passes, oom=False)


def gc_fraction(occupancy: float) -> float:
    """GC overhead as a fraction of CPU time, superlinear in heap occupancy.

    Near-empty heaps pay ~1.5% (young-gen churn); heaps running close to
    full pay several tens of percent in full-GC pauses — the regime badly
    sized ``spark.memory.fraction`` puts executors in.
    """
    occ = min(1.2, max(0.0, occupancy))
    return min(0.45, 0.015 + 0.35 * occ**4)
