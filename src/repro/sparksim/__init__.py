"""Discrete-event Spark simulator: RDDs, DAGs, executors, cost model."""

from .costmodel import (
    Calibration,
    StageCost,
    StageCostBatch,
    TaskCost,
    compute_stage_cost,
    compute_stage_cost_batch,
    with_overrides,
)
from .dag import (
    CacheRegistry,
    CompiledJob,
    CompiledStage,
    CompiledWorkload,
    JobPlan,
    StageProfile,
    compile_job,
    compile_workload,
    fingerprint_jobs,
)
from .eventlog import event_lines, read_event_log, write_event_log
from .executor import ExecutorModel
from .faults import (
    FaultDraw,
    FaultPlan,
    FaultSpec,
    env_spike,
    executor_loss,
    oom_kill,
    straggler,
    worker_crash,
)
from .memory import CachePlan, SpillOutcome, gc_fraction, plan_cache, spill_outcome
from .metrics import ExecutionResult, StageMetrics, TaskMetrics
from .rdd import RDD, Job
from .scheduler import StageSchedule, schedule_stage, schedule_stage_batch
from .shuffle import CODECS, SERIALIZERS, shuffle_read, shuffle_write
from .simulator import SparkSimulator

__all__ = [
    "RDD",
    "Job",
    "StageProfile",
    "JobPlan",
    "CacheRegistry",
    "compile_job",
    "CompiledStage",
    "CompiledJob",
    "CompiledWorkload",
    "compile_workload",
    "fingerprint_jobs",
    "ExecutorModel",
    "FaultSpec",
    "FaultDraw",
    "FaultPlan",
    "executor_loss",
    "straggler",
    "oom_kill",
    "env_spike",
    "worker_crash",
    "CachePlan",
    "SpillOutcome",
    "plan_cache",
    "spill_outcome",
    "gc_fraction",
    "CODECS",
    "SERIALIZERS",
    "shuffle_read",
    "shuffle_write",
    "Calibration",
    "TaskCost",
    "StageCost",
    "StageCostBatch",
    "compute_stage_cost",
    "compute_stage_cost_batch",
    "with_overrides",
    "StageSchedule",
    "schedule_stage",
    "schedule_stage_batch",
    "event_lines",
    "write_event_log",
    "read_event_log",
    "ExecutionResult",
    "StageMetrics",
    "TaskMetrics",
    "SparkSimulator",
]
