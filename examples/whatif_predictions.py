"""Ask the Starfish-style what-if engine configuration questions.

"Given the profile of job A, input data x, cluster resources c1, what
will the performance of job B be with input data y and cluster
resources c2?" — profile once, then query for free::

    python examples/whatif_predictions.py
"""

from repro.cloud import Cluster
from repro.core import probe_configuration
from repro.sparksim import SparkSimulator
from repro.tuning import JobProfile, WhatIfEngine
from repro.workloads import BayesClassifier


def main():
    simulator = SparkSimulator()
    cluster = Cluster.of("h1.4xlarge", 4)
    workload = BayesClassifier()
    probe = probe_configuration()

    profiled = simulator.run(workload, 10_000, cluster, probe, seed=1)
    engine = WhatIfEngine(JobProfile.from_execution(profiled, probe, cluster))
    print(f"profiled: {workload.name} @ 10 GB on {cluster.describe()} "
          f"-> {profiled.runtime_s:.0f}s\n")

    questions = [
        ("2.5x the input data", dict(input_mb=25_000)),
        ("8-node cluster", dict(cluster=Cluster.of("h1.4xlarge", 8))),
        ("double the executors",
         dict(config=probe.replace(**{"spark.executor.instances": 16}))),
        ("kryo serializer",
         dict(config=probe.replace(**{"spark.serializer": "kryo"}))),
        ("compute-optimized nodes",
         dict(cluster=Cluster.of("c5.4xlarge", 4))),
    ]
    print(f"{'what if...':<28} {'predicted':>10} {'actual':>10} {'error':>8}")
    for label, kwargs in questions:
        predicted = engine.predict(kwargs.get("config", probe),
                                   cluster=kwargs.get("cluster"),
                                   input_mb=kwargs.get("input_mb"))
        actual = simulator.run(
            workload, kwargs.get("input_mb", 10_000),
            kwargs.get("cluster", cluster), kwargs.get("config", probe),
            seed=7,
        )
        err = abs(predicted - actual.runtime_s) / actual.runtime_s
        print(f"{label:<28} {predicted:>9.0f}s {actual.runtime_s:>9.0f}s "
              f"{err:>7.0%}")
    print("\npredictions are free; their accuracy is what Starfish-style "
          "tuning lives and dies by (paper Section II.B).")


if __name__ == "__main__":
    main()
