"""Quickstart: seamless tuning of one workload, end to end.

The user experience the paper's vision describes — submit a workload and
an objective; the service picks the cluster, tunes Spark, and reports
what it did::

    python examples/quickstart.py
"""

from repro import TuningService
from repro.core import SLOMetric, TuningSLO
from repro.workloads import PageRank


def main():
    service = TuningService(provider="aws", seed=42)

    # "Run my PageRank within 25% of the best achievable runtime."
    slo = TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, target_fraction=0.5)
    workload = PageRank()
    deployment = service.submit(
        tenant="quickstart-user",
        workload=workload,
        input_mb=workload.inputs.ds2_mb,
        slo=slo,
        cloud_budget=10,
        disc_budget=20,
    )

    print("=== Seamless tuning result ===")
    print(f"workload:           {workload.describe()}")
    print(f"chosen cluster:     {deployment.cluster.describe()} "
          f"(${deployment.cluster.price_per_hour:.2f}/h)")
    print(f"expected runtime:   {deployment.expected_runtime_s:.1f}s")
    print(f"tuning executions:  {deployment.tuning_evaluations} "
          f"(BestConfig needed ~500)")
    print(f"tuning cost:        ${service.ledger.tuning_cost:.2f} "
          f"(charged to the provider, not the user)")
    if deployment.slo_report is not None:
        print(f"SLO:                {deployment.slo_report.describe()}")

    print("\nTop Spark settings chosen:")
    for key in ("spark.executor.instances", "spark.executor.cores",
                "spark.executor.memory", "spark.default.parallelism",
                "spark.serializer", "spark.memory.fraction"):
        print(f"  {key} = {deployment.config[key]}")


if __name__ == "__main__":
    main()
