"""Elastic per-run cluster sizing for a workload with fluctuating inputs.

Section IV.B: static cluster choices "miss the opportunity of using the
cloud's elasticity features when the workload changes".  Here a daily
report job sees inputs between 4 GB and 32 GB; the scaler learns a
scaling model online and right-sizes the cluster per run::

    python examples/elastic_sizing.py
"""

import numpy as np

from repro.cloud import Cluster, get_instance
from repro.core import ElasticScaler, probe_configuration
from repro.sparksim import SparkSimulator
from repro.workloads import PageRank


def main():
    simulator = SparkSimulator()
    workload = PageRank(iterations=4)
    instance = get_instance("m5.2xlarge")
    config = probe_configuration().replace(**{
        "spark.executor.instances": 40, "spark.executor.cores": 4,
        "spark.executor.memory": 8192, "spark.default.parallelism": 256,
    })
    rng = np.random.default_rng(4)
    schedule = [float(rng.choice([4_000, 8_000, 16_000, 32_000]))
                for _ in range(20)]

    scaler = ElasticScaler(instance, min_nodes=2, max_nodes=16,
                           objective="price", runtime_cap_s=700.0)
    static = Cluster(instance, 16)  # provisioned for the peak

    print(f"{'run':>4} {'input GB':>9} {'nodes':>6} {'runtime':>9} "
          f"{'elastic $':>10} {'static $':>9}")
    elastic_bill = static_bill = 0.0
    for i, mb in enumerate(schedule):
        cluster = scaler.cluster_for(mb)
        run = simulator.run(workload, mb, cluster, config, seed=i)
        scaler.observe(cluster.count, mb, run.effective_runtime())
        static_run = simulator.run(workload, mb, static, config, seed=i)
        e_cost = cluster.cost_of(run.effective_runtime())
        s_cost = static.cost_of(static_run.effective_runtime())
        elastic_bill += e_cost
        static_bill += s_cost
        print(f"{i:>4} {mb / 1024:>9.0f} {cluster.count:>6} "
              f"{run.runtime_s:>8.0f}s {e_cost:>10.3f} {s_cost:>9.3f}")

    saving = (static_bill - elastic_bill) / static_bill
    print(f"\nstatic-for-peak bill:  ${static_bill:.2f}")
    print(f"elastic bill:          ${elastic_bill:.2f}  ({saving:.0%} saved)")


if __name__ == "__main__":
    main()
