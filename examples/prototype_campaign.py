"""Replicate the authors' measurement campaign, in miniature.

"All observations are based on our experience in running our own
self-tuning Spark prototype in clouds from two major providers,
totalling more than 6 months of continued execution for clusters from
4 VMs to 20 VMs, with more than 2000 configurations tested across 5
types of workloads."  (Section IV)

This script runs that campaign against the simulator — 2000 random
configurations across 5 workload types on clusters from 4 to 20 VMs on
two providers — and prints the aggregate statistics such a campaign
yields (the raw material behind Table I and the vision's claims)::

    python examples/prototype_campaign.py
"""

import numpy as np

from repro.cloud import Cluster, list_instances
from repro.config import spark_space
from repro.sparksim import SparkSimulator
from repro.workloads import get_workload

N_CONFIGS = 2000
WORKLOAD_TYPES = ["wordcount", "sort", "pagerank", "bayes", "kmeans"]
PROVIDERS = ("aws", "gcp")


def main():
    simulator = SparkSimulator()
    space = spark_space()
    rng = np.random.default_rng(2019)
    instance_pool = [t for p in PROVIDERS for t in list_instances(provider=p)
                     if t.vcpus >= 4]

    stats = {name: {"runtimes": [], "failures": 0} for name in WORKLOAD_TYPES}
    cluster_hours = 0.0
    dollars = 0.0
    for i in range(N_CONFIGS):
        name = WORKLOAD_TYPES[i % len(WORKLOAD_TYPES)]
        workload = get_workload(name)
        instance = instance_pool[int(rng.integers(len(instance_pool)))]
        cluster = Cluster(instance, int(rng.integers(4, 21)))  # 4..20 VMs
        config = space.sample_configuration(rng)
        result = simulator.run(workload, workload.inputs.ds1_mb, cluster,
                               config, seed=i)
        runtime = result.effective_runtime()
        cluster_hours += cluster.count * runtime / 3600.0
        dollars += cluster.cost_of(runtime)
        if result.success:
            stats[name]["runtimes"].append(result.runtime_s)
        else:
            stats[name]["failures"] += 1

    print(f"campaign: {N_CONFIGS} configurations x 5 workload types, "
          f"clusters of 4-20 VMs on {len(PROVIDERS)} providers")
    print(f"simulated VM-hours: {cluster_hours:,.0f}  "
          f"(~{cluster_hours / 24 / 30:.1f} VM-months)  bill: ${dollars:,.2f}\n")
    print(f"{'workload':<12} {'runs':>5} {'crashed':>8} {'best':>8} "
          f"{'median':>8} {'worst':>9} {'spread':>8}")
    for name, s in stats.items():
        runtimes = np.array(s["runtimes"])
        print(f"{name:<12} {len(runtimes):>5} {s['failures']:>8} "
              f"{runtimes.min():>7.0f}s {np.median(runtimes):>7.0f}s "
              f"{runtimes.max():>8.0f}s {runtimes.max() / runtimes.min():>7.0f}x")
    print("\nthe spread column is the paper's motivation in one number: "
          "plausible configurations differ by orders of magnitude.")


if __name__ == "__main__":
    main()
