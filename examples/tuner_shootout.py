"""Compare every tuning strategy the paper surveys on one workload.

Runs random search, MROnline-style hill climbing, BestConfig DDS+RBS,
GA, DAC, regression-tree tuning, Q-learning and CherryPick-style BO with
the same budget and prints the incumbent curve — the Section II survey
as an experiment::

    python examples/tuner_shootout.py
"""

from repro.cloud import Cluster
from repro.config import spark_core_space
from repro.tuning import (
    BayesOptTuner,
    BestConfigTuner,
    DACTuner,
    GeneticTuner,
    HillClimbTuner,
    QLearningTuner,
    RandomSearchTuner,
    SimulationObjective,
    TreeTuner,
    run_tuner,
)
from repro.workloads import BayesClassifier

BUDGET = 30
CHECKPOINTS = (5, 10, 20, 30)


def main():
    space = spark_core_space()
    cluster = Cluster.of("h1.4xlarge", 4)
    workload = BayesClassifier()
    input_mb = workload.inputs.ds1_mb

    tuners = {
        "random": RandomSearchTuner(space, seed=1),
        "hillclimb (MROnline)": HillClimbTuner(space, seed=1),
        "bestconfig (DDS+RBS)": BestConfigTuner(space, seed=1, samples_per_round=10),
        "genetic": GeneticTuner(space, seed=1, population_size=10),
        "dac (RF+GA)": DACTuner(space, seed=1, n_init=10, ga_generations=6),
        "tree (Wang et al.)": TreeTuner(space, seed=1, n_init=10),
        "qlearning (Bu et al.)": QLearningTuner(space, seed=1),
        "bo (CherryPick)": BayesOptTuner(space, seed=1, n_init=10),
    }

    header = f"{'tuner':<22}" + "".join(f"{f'@{c}':>10}" for c in CHECKPOINTS)
    print(f"best runtime (s) after N executions — {workload.name} "
          f"{input_mb / 1024:.0f} GB on {cluster.describe()}")
    print(header)
    print("-" * len(header))
    for name, tuner in tuners.items():
        objective = SimulationObjective(workload, input_mb, cluster=cluster, seed=77)
        result = run_tuner(tuner, objective, budget=BUDGET)
        curve = result.incumbent_curve()
        cells = "".join(f"{curve[c - 1]:>10.1f}" for c in CHECKPOINTS)
        print(f"{name:<22}{cells}")


if __name__ == "__main__":
    main()
