"""Joint cloud + DISC tuning vs tuning each layer in isolation.

The paper's core technical argument (Section I): "real-world scenarios
imply that such optimisations need to be done jointly ... Optimal
choices for some of those elements are not absolute but dependent on the
others (a basic example would be the relationship between the number of
virtual CPUs allocated and the number of Spark executor cores)."

This script tunes SQL join+aggregation three ways with the same total
execution budget and compares end-to-end dollar cost per run::

    python examples/cloud_vs_disc_joint.py
"""

from repro.cloud import Cluster
from repro.config import cloud_space, joint_space, spark_core_space
from repro.tuning import BayesOptTuner, SimulationObjective, run_tuner
from repro.workloads import SqlJoinAgg

TOTAL_BUDGET = 36
SEED = 3


def price_objective(workload, input_mb, cluster=None):
    return SimulationObjective(workload, input_mb, cluster=cluster,
                               metric="price", seed=SEED)


def main():
    workload = SqlJoinAgg()
    input_mb = workload.inputs.ds1_mb
    disc = spark_core_space()

    # (a) DISC-only on a fixed, manually chosen cluster.
    fixed = Cluster.of("m5.2xlarge", 6)
    result_disc = run_tuner(
        BayesOptTuner(disc, seed=SEED, n_init=10),
        price_objective(workload, input_mb, cluster=fixed),
        budget=TOTAL_BUDGET,
    )

    # (b) Two-stage: half the budget picks the cloud (default Spark
    # config), half tunes DISC on the winner.
    cloud = cloud_space("aws", min_nodes=2, max_nodes=12)
    stage1 = run_tuner(
        BayesOptTuner(cloud, seed=SEED, n_init=6),
        price_objective(workload, input_mb),
        budget=TOTAL_BUDGET // 2,
    )
    best_cloud = stage1.best_config
    chosen = Cluster.of(best_cloud["cloud.instance_type"],
                        int(best_cloud["cloud.cluster_size"]))
    stage2 = run_tuner(
        BayesOptTuner(disc, seed=SEED, n_init=8),
        price_objective(workload, input_mb, cluster=chosen),
        budget=TOTAL_BUDGET - TOTAL_BUDGET // 2,
    )

    # (c) Joint: one model over both layers.
    joint = joint_space(disc, provider="aws", min_nodes=2, max_nodes=12)
    result_joint = run_tuner(
        BayesOptTuner(joint, seed=SEED, n_init=12),
        price_objective(workload, input_mb),
        budget=TOTAL_BUDGET,
    )
    jc = result_joint.best_config

    print(f"cost per run (USD) after {TOTAL_BUDGET} total executions — "
          f"{workload.name} {input_mb / 1024:.0f} GB")
    print(f"  (a) DISC-only on {fixed.describe():<18}: "
          f"${result_disc.best_cost:.4f}")
    print(f"  (b) two-stage  on {chosen.describe():<18}: "
          f"${stage2.best_cost:.4f}")
    print(f"  (c) joint      on {jc['cloud.cluster_size']}x "
          f"{jc['cloud.instance_type']:<15}: ${result_joint.best_cost:.4f}")

    interaction = (
        "joint/two-stage found a cheaper (instance, executor-shape) pairing "
        "than the manual cluster"
        if min(stage2.best_cost, result_joint.best_cost) < result_disc.best_cost
        else "the manual cluster happened to be competitive this time"
    )
    print(f"\n{interaction}")
    print("executor shape chosen jointly: "
          f"{jc['spark.executor.instances']} executors x "
          f"{jc['spark.executor.cores']} cores on "
          f"{jc['cloud.instance_type']} "
          f"({Cluster.of(jc['cloud.instance_type'], 2).instance.vcpus} vCPUs/node)")


if __name__ == "__main__":
    main()
