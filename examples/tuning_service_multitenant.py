"""A multi-tenant day at the provider: history, similarity, transfer, SLOs.

Three tenants submit workloads over time.  The provider's history grows
with every execution; when tenant C submits a graph job similar to
tenant A's, the service recognizes it from execution signatures alone
(no workload identity crosses tenants) and warm-starts the tuning —
the Section IV.C / V.B machinery in one script::

    python examples/tuning_service_multitenant.py
"""

from repro import TuningService
from repro.core import SLOMetric, TuningSLO, find_similar_workloads
from repro.workloads import BayesClassifier, PageRank, Wordcount, variant_of


def main():
    service = TuningService(provider="aws", seed=19)
    slo = TuningSLO(SLOMetric.IMPROVEMENT_OVER_DEFAULT, target_fraction=0.5)

    submissions = [
        ("acme-analytics", PageRank(), 9_000),
        ("initech-logs", Wordcount(), 60_000),
        ("globex-ml", BayesClassifier(), 10_000),
        # Tenant C's job is a PageRank variant — similar in *behaviour*.
        ("contoso-graphs", variant_of(PageRank(), name="web-ranking",
                                      cpu_scale=1.4), 12_000),
    ]

    print(f"{'tenant':<18} {'workload':<14} {'cluster':<22} "
          f"{'runtime':>8} {'evals':>6}  warm-started from")
    for tenant, workload, input_mb in submissions:
        deployment = service.submit(tenant, workload, input_mb, slo=slo,
                                    cloud_budget=8, disc_budget=16)
        sources = ", ".join(deployment.transferred_from) or "-"
        print(f"{tenant:<18} {workload.name:<14} "
              f"{deployment.cluster.describe():<22} "
              f"{deployment.expected_runtime_s:>7.1f}s "
              f"{deployment.tuning_evaluations:>6}  {sources}")

    print(f"\nprovider history: {len(service.store)} executions across "
          f"{len(service.store.tenants())} tenants")
    print(f"provider-side tuning spend: ${service.ledger.tuning_cost:.2f} "
          f"over {service.ledger.tuning_runs} runs")

    # What the similarity engine sees (signatures only, no identities).
    target = service.store.mean_signature("contoso-graphs", "web-ranking")
    if target is None:
        print("\n(no successful contoso executions to characterize)")
        return
    print("\nnearest workloads to contoso's web-ranking (by signature):")
    for s in find_similar_workloads(service.store, target, k=3,
                                    exclude=("contoso-graphs", "web-ranking")):
        print(f"  {s.tenant}/{s.workload_label:<14} distance={s.distance:.3f}")


if __name__ == "__main__":
    main()
