"""Resilience to input growth: the Section IV.B / Table I scenario, live.

A tenant's PageRank runs daily while its input grows (DS1 -> DS3).  The
service monitors production runtimes with an adaptive drift detector and
re-tunes automatically when the workload outgrows its configuration —
the "accurately and efficiently define the need for configuration
re-tuning" requirement::

    python examples/evolving_input_retuning.py
"""

import numpy as np

from repro import SparkSimulator, TuningService
from repro.workloads import PageRank


def main():
    service = TuningService(provider="aws", seed=7)
    workload = PageRank()
    sizes = workload.inputs

    deployment = service.submit(
        "growing-tenant", workload, sizes.ds1_mb,
        cloud_budget=8, disc_budget=18,
    )
    print(f"initial deployment: {deployment.cluster.describe()}, "
          f"expected {deployment.expected_runtime_s:.0f}s at DS1 "
          f"({sizes.ds1_mb / 1024:.0f} GB)")

    # 18 production runs while the dataset grows DS1 -> DS2 -> DS3.
    schedule = [sizes.ds1_mb] * 6 + [sizes.ds2_mb] * 6 + [sizes.ds3_mb] * 6
    stale_config = deployment.config  # what a non-adaptive user keeps running
    runs = service.run_production(deployment, schedule, retune_budget=12)

    print(f"\n{'run':>4} {'input GB':>9} {'runtime s':>10}  action")
    for r in runs:
        action = "<-- RE-TUNED" if r.retuned else ""
        print(f"{r.index:>4} {r.input_mb / 1024:>9.0f} {r.runtime_s:>10.1f}  {action}")

    print(f"\nre-tunings triggered: {deployment.retuned_count}")

    # What did adaptation buy?  Compare the final tuned config against the
    # DS1 config at DS3 scale (the Table I question).
    simulator = SparkSimulator()
    stale = np.mean([
        simulator.run(workload, sizes.ds3_mb, deployment.cluster,
                      stale_config, seed=900 + s).effective_runtime()
        for s in range(3)
    ])
    adapted = np.mean([
        simulator.run(workload, sizes.ds3_mb, deployment.cluster,
                      deployment.config, seed=900 + s).effective_runtime()
        for s in range(3)
    ])
    saving = (stale - adapted) / stale * 100
    print(f"DS3 with the stale DS1 config:  {stale:8.1f}s")
    print(f"DS3 with the adapted config:    {adapted:8.1f}s")
    print(f"saving from re-tuning:          {saving:8.1f}%  "
          f"(paper's Table I: up to 56%)")


if __name__ == "__main__":
    main()
